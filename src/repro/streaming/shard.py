"""Sharded multi-process fleet serving over shared-memory ring buffers.

:class:`~repro.streaming.fleet.FleetPredictor` vectorizes a whole fleet
into one process; on a multi-core host that one process is the ceiling.
:class:`ShardedFleetPredictor` removes it by partitioning the N streams
of a fleet across a pool of **persistent** worker processes, each
running its own :class:`FleetPredictor` shard, and driving them in
lock-step, one tick at a time:

* the coordinator writes the ``(N, F)`` tick into a shared-memory block
  (:class:`~repro.streaming.shm.ShmBlock`) and sends each worker a
  constant-size control token — per-tick traffic over the pipes is
  O(shards), never O(N), and no record is ever pickled on the hot path;
* each worker reads its contiguous row-slice of the tick, runs its
  shard's ``process_tick``, and writes the columnar
  :class:`~repro.streaming.fleet.FleetTick` mirror (predictions,
  actuals, errors, drift, health, gate actions) back into the same
  block;
* worker stream histories live in a fleet-wide
  :class:`~repro.streaming.shm.SharedMatrixRingBuffer`, so the
  coordinator can read any stream's recent records zero-copy
  (:meth:`ShardedFleetPredictor.stream_history`) without interrupting a
  worker;
* the whole fleet checkpoints as **one** artifact: the coordinator
  collects every shard's ``state_dict`` (rare path — the pipe is fine
  there) and composes them with the fleet config; restore rejects
  config mismatches and resumes every shard bit-for-bit;
* worker observability merges on :meth:`close` through the same
  ``adopt_series`` / span-revival path the parallel experiment runner
  uses — per-shard tick-latency histograms are adopted both fleet-wide
  (same-name series sum) and under a ``shard`` label.

**Exactness contract:** with ``shards=1`` every
:class:`~repro.streaming.fleet.FleetTick` is bit-identical to a
single-process :class:`FleetPredictor` fed the same ticks, including
across a mid-stream snapshot/restore (asserted in
``tests/streaming/test_shard.py``). With ``shards > 1`` the semantics
deliberately change in exactly one way: the shared model and the refit
clock become *per-shard* (shard-local pooled refits) instead of
fleet-global — the same trade the fleet made against the scalar
predictor, one level up.

**Self-healing fault tolerance:** a worker that dies or wedges (crash,
OOM-kill, ``SIGKILL``, deadlock) takes only its own streams down, and
only until the supervisor brings it back. Every coordinator↔worker
exchange observes a deadline (``tick_timeout`` on the hot path,
``control_timeout`` on stats/save/load/metrics), so a *hung* worker is
detected as surely as a dead one; a failed worker is escalated
``terminate → kill`` so the old process can never race its replacement
on the shm slice. The supervision loop then closes detect → respawn →
restore:

* workers snapshot their shard to disk **in the background** every
  ``checkpoint_interval`` ticks (after acking the tick, so the barrier
  never stalls on I/O), through the checksummed atomic writer in
  :mod:`repro.streaming.checkpoint`;
* a failed shard is respawned with exponential backoff
  (:class:`RespawnPolicy`); the replacement re-attaches to the same shm
  block, restores from its last intact background checkpoint (a
  missing/corrupt one degrades to a cold start, never an abort), and
  rejoins the barrier;
* while a shard rebuilds, its rows **hold the last served prediction**
  flagged ``health=3`` (``RECOVERING``) instead of going NaN — degraded
  but available;
* a shard that fails ``max_failures`` times inside ``failure_window``
  ticks trips the crash-loop breaker into durable quarantine (NaN rows,
  ``health=2``, never respawned); when *every* shard is quarantined,
  :meth:`process_tick` raises :class:`AllShardsFailedError` instead of
  silently serving an all-NaN fleet forever.

The whole loop is deterministic enough to test: a
:class:`~repro.streaming.faults.ChaosSchedule` handed to the
constructor is forwarded to the workers, which kill/hang/slow/corrupt
themselves at exact tick indices.
"""

from __future__ import annotations

import os
import signal
import time
import traceback as _traceback
from collections import deque
from dataclasses import dataclass
from multiprocessing import get_context
from multiprocessing.connection import wait as _conn_wait
from pathlib import Path
from typing import Any

import numpy as np

from ..obs import trace as obs_trace
from ..obs.registry import Counter as MetricCounter
from ..obs.registry import Gauge as MetricGauge
from ..obs.registry import Histogram as MetricHistogram
from ..obs.registry import MetricRegistry, get_registry, is_enabled, log_buckets
from .checkpoint import (
    CheckpointError,
    read_checkpoint,
    try_read_checkpoint,
    write_checkpoint,
)
from .faults import ChaosSchedule, ProcessFault
from .fleet import FleetPredictor, FleetTick, TickColumns
from .resilience import GATE_QUARANTINE
from .shm import ShmArraySpec, SlottedShmBlock, SharedMatrixRingBuffer, ring_specs

__all__ = [
    "ShardedFleetPredictor",
    "RespawnPolicy",
    "AllShardsFailedError",
    "shard_boundaries",
]

#: gate action code and health level stamped on rows of a dead shard
_DEAD_GATED = GATE_QUARANTINE
_DEAD_HEALTH = 2
#: health level stamped on rows whose shard is down but being recovered
_RECOVERING_HEALTH = 3

#: seconds the coordinator waits for the initial ready handshake — start-up
#: pays interpreter spawn + imports, so it gets a deadline of its own
_STARTUP_TIMEOUT = 120.0

#: FleetPredictor constructor defaults the coordinator must mirror when a
#: kwarg is left unset (config snapshots and shm sizing depend on them)
_FLEET_DEFAULTS = {
    "forecaster_name": "xgboost",
    "window": 12,
    "buffer_capacity": 600,
    "features": 1,
    "target_col": 0,
}


class AllShardsFailedError(RuntimeError):
    """Every shard is quarantined — the fleet cannot serve a single row."""


@dataclass(frozen=True)
class RespawnPolicy:
    """How the supervisor brings failed shard workers back.

    A failed shard waits ``backoff_ticks`` fleet ticks before its first
    respawn, doubling per consecutive failure up to
    ``backoff_max_ticks``. The crash-loop breaker trips when
    ``max_failures`` failures land within a sliding ``failure_window``
    ticks: the shard is durably quarantined (NaN rows, never respawned)
    so a poisoned checkpoint or bad input slice cannot burn CPU forever.
    """

    max_failures: int = 3
    failure_window: int = 512
    backoff_ticks: int = 2
    backoff_max_ticks: int = 64

    def __post_init__(self) -> None:
        if self.max_failures < 1:
            raise ValueError(f"max_failures must be >= 1, got {self.max_failures}")
        if self.failure_window < 1:
            raise ValueError(f"failure_window must be >= 1, got {self.failure_window}")
        if self.backoff_ticks < 0:
            raise ValueError(f"backoff_ticks must be >= 0, got {self.backoff_ticks}")
        if self.backoff_max_ticks < self.backoff_ticks:
            raise ValueError(
                f"backoff_max_ticks ({self.backoff_max_ticks}) must be >= "
                f"backoff_ticks ({self.backoff_ticks})"
            )


def shard_boundaries(n_streams: int, shards: int) -> tuple[int, ...]:
    """Contiguous, balanced partition bounds: shard ``i`` owns ``[b[i], b[i+1])``."""
    if shards < 1 or shards > n_streams:
        raise ValueError(
            f"shards must be in [1, n_streams={n_streams}], got {shards}"
        )
    return tuple((i * n_streams) // shards for i in range(shards + 1))


#: tick-pipeline depth — two banks: the coordinator writes tick t+1 into
#: bank (t+1) % 2 while workers still compute tick t in bank t % 2
_TICK_BANKS = 2

#: the six columnar FleetTick output fields mirrored through shared memory
_TICK_OUT_FIELDS = ("predictions", "actuals", "errors", "drift", "health", "gated")


def _tick_specs(n_streams: int, features: int) -> tuple[ShmArraySpec, ...]:
    """The per-tick fan-out/fan-in arrays (columnar FleetTick mirror).

    These are slotted into :data:`_TICK_BANKS` banks by the coordinator;
    the per-shard ``refit`` flag and ``model_version`` travel in the tick
    ack token instead (so swap adoption is event-driven, not a barrier
    read).
    """
    return (
        ShmArraySpec("ticks_in", (n_streams, features), "<f8"),
        ShmArraySpec("predictions", (n_streams,), "<f8"),
        ShmArraySpec("actuals", (n_streams,), "<f8"),
        ShmArraySpec("errors", (n_streams,), "<f8"),
        ShmArraySpec("drift", (n_streams,), "|b1"),
        ShmArraySpec("health", (n_streams,), "|u1"),
        ShmArraySpec("gated", (n_streams,), "|i1"),
    )


def _shard_worker(
    conn: Any,
    shm_name: str,
    specs: tuple[ShmArraySpec, ...],
    shared_specs: tuple[ShmArraySpec, ...],
    shard_index: int,
    lo: int,
    hi: int,
    fleet_kwargs: dict[str, Any],
    restore_path: str | None = None,
    checkpoint_path: str | None = None,
    checkpoint_interval: int | None = None,
    chaos: dict[int, ProcessFault] | None = None,
) -> None:
    """Worker loop: one persistent process serving streams ``[lo, hi)``.

    Runs in a spawned child with a clean interpreter. All per-tick data
    moves through the attached shm block; the pipe carries only control
    tokens and the rare state/metrics payloads. The tick arrays are
    double-buffered: step ``t`` reads its input from (and writes its
    outputs to) bank ``t % 2``, so the coordinator can stage tick t+1
    while this worker still computes tick t. The tick ack carries the
    shard's ``refit`` flag and live ``model_version`` so the coordinator
    adopts async-refit swaps on the ack itself, not at a barrier read.

    ``restore_path`` (set on supervised respawn) is a best-effort
    background checkpoint: intact → resume from it; missing/corrupt →
    cold start with cleared ring cursors (the shm slice still holds the
    dead predecessor's head/size, which must not leak into a fresh
    predictor). ``chaos`` maps exact fleet steps to scheduled process
    faults; the step counter in each tick token keys the lookup, so a
    respawned worker never re-fires a fault the fleet already absorbed.
    """

    def _fresh_predictor() -> FleetPredictor:
        predictor = FleetPredictor(hi - lo, **fleet_kwargs)
        # swap the private history ring for this shard's row-slice of the
        # fleet-wide shared ring: same semantics, zero-copy parent reads
        predictor.buffer = SharedMatrixRingBuffer.from_arrays(
            block["ring_data"][lo:hi], block["ring_head"][lo:hi], block["ring_size"][lo:hi]
        )
        return predictor

    try:
        block = SlottedShmBlock.attach(specs, _TICK_BANKS, shm_name, shared=shared_specs)
        predictor = _fresh_predictor()
        restored_step: int | None = None
        if restore_path is not None:
            artifact = try_read_checkpoint(restore_path)
            if (
                isinstance(artifact, dict)
                and artifact.get("kind") == "fleet_shard"
                and artifact.get("lo") == lo
                and artifact.get("hi") == hi
            ):
                try:
                    predictor.load_state_dict(artifact["state"])
                    restored_step = int(artifact["step"])
                except Exception:  # noqa: BLE001 — damaged snapshot degrades to cold start
                    predictor = _fresh_predictor()
                    restored_step = None
        if restored_step is None:
            # cold start: the shm slice may hold a dead predecessor's ring
            # cursors — reset them so history starts empty
            predictor.buffer.clear()
        conn.send(("ready", lo, hi, restored_step))
    except Exception as exc:  # noqa: BLE001 — startup failure must reach the parent
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}", _traceback.format_exc()))
        finally:
            conn.close()
        return

    from ..obs.registry import default_registry

    c_ckpt = c_ckpt_fail = None
    if checkpoint_path is not None and checkpoint_interval:
        reg = default_registry()
        c_ckpt = reg.counter(
            "serving_shard_checkpoints_total", "background shard checkpoints written"
        )
        c_ckpt_fail = reg.counter(
            "serving_shard_checkpoint_failures_total",
            "background shard checkpoint writes that failed",
        )

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        cmd = msg[0]
        try:
            if cmd == "tick":
                step = int(msg[1]) if len(msg) > 1 else -1
                fault = chaos.get(step) if chaos else None
                if fault is not None:
                    if fault.kind == "kill":
                        # abrupt death, no cleanup — the hardest failure mode
                        if hasattr(signal, "SIGKILL"):
                            os.kill(os.getpid(), signal.SIGKILL)
                        os._exit(1)
                    if fault.kind == "hang":
                        time.sleep(3600.0)
                        continue
                    if fault.kind == "corrupt":
                        conn.send(("garbage", step, "chaos: corrupted tick reply"))
                        continue
                    if fault.kind == "slow":
                        time.sleep(fault.duration)
                bank = block.bank(step)
                tick = np.array(bank["ticks_in"][lo:hi])
                result = predictor.process_tick(tick)
                bank["predictions"][lo:hi] = result.predictions
                bank["actuals"][lo:hi] = result.actuals
                bank["errors"][lo:hi] = result.errors
                bank["drift"][lo:hi] = result.drift
                bank["health"][lo:hi] = result.health
                bank["gated"][lo:hi] = result.gated
                # the ack is the event that publishes this shard's refit flag
                # and model version — the coordinator adopts them on receipt
                conn.send(("ok", step, int(result.refit), int(result.model_version)))
                # background checkpoint AFTER the ack: the tick barrier never
                # waits on serialization or disk
                if (
                    checkpoint_path is not None
                    and checkpoint_interval
                    and (step + 1) % checkpoint_interval == 0
                ):
                    try:
                        write_checkpoint(
                            checkpoint_path,
                            {
                                "kind": "fleet_shard",
                                "shard": shard_index,
                                "lo": lo,
                                "hi": hi,
                                "step": step,
                                # which double-buffer bank this step served
                                # from — restore tooling can tell whether a
                                # snapshot raced an in-flight pipeline step
                                "bank": step % _TICK_BANKS,
                                "state": predictor.state_dict(),
                            },
                        )
                        c_ckpt.inc()
                    except Exception:  # noqa: BLE001 — checkpoint failure must not kill serving
                        c_ckpt_fail.inc()
            elif cmd == "state":
                conn.send(("state", predictor.state_dict()))
            elif cmd == "load":
                predictor.load_state_dict(msg[1])
                conn.send(("ok",))
            elif cmd == "stats":
                st = predictor.stats
                conn.send(
                    (
                        "stats",
                        {
                            "streams": hi - lo,
                            "n_predictions": int(st.n_predictions.sum()),
                            "sum_abs_error": float(st.sum_abs_error.sum()),
                            "n_refits": int(st.n_refits),
                            "n_refit_failures": int(st.n_refit_failures),
                            "n_drifts": int(st.n_drifts.sum()),
                            "n_quarantined": int(predictor.gate.n_quarantined.sum()),
                            "health": predictor.health.name,
                        },
                    )
                )
            elif cmd == "metrics":
                tracer = obs_trace.default_tracer()
                conn.send(
                    (
                        "metrics",
                        default_registry().snapshot()["series"],
                        [s.to_dict() for s in tracer.finished],
                    )
                )
                tracer.clear()
            elif cmd == "stop":
                conn.send(("ok",))
                break
            else:
                conn.send(("error", f"unknown command {cmd!r}", ""))
        except Exception as exc:  # noqa: BLE001 — report, stay alive; parent decides
            try:
                conn.send(("error", f"{type(exc).__name__}: {exc}", _traceback.format_exc()))
            except (BrokenPipeError, OSError):
                break
    try:
        predictor.close()  # release a per-shard async refit worker, if any
    except Exception:  # noqa: BLE001 — shutdown best effort
        pass
    conn.close()


class _ShardHandle:
    """Coordinator-side record of one worker: process, pipe, slice, lifecycle.

    ``state`` is the supervision state machine:
    ``live`` (serving) → ``down`` (failure detected, waiting out backoff)
    → ``respawning`` (replacement spawned, ready not yet seen) → ``live``
    again on restore, or → ``quarantined`` (breaker tripped, terminal).
    ``close()`` stamps the terminal ``closed`` state.
    """

    __slots__ = (
        "index",
        "lo",
        "hi",
        "proc",
        "conn",
        "state",
        "failed_step",
        "failure_steps",
        "consecutive_failures",
        "next_respawn_step",
        "restored_step",
    )

    def __init__(self, index: int, lo: int, hi: int, proc: Any, conn: Any) -> None:
        self.index = index
        self.lo = lo
        self.hi = hi
        self.proc = proc
        self.conn = conn
        self.state = "live"
        #: fleet step at which the *current* outage began (None when live)
        self.failed_step: int | None = None
        #: recent failure steps inside the breaker window
        self.failure_steps: list[int] = []
        self.consecutive_failures = 0
        self.next_respawn_step = 0
        #: step of the checkpoint the current worker restored from (None = cold)
        self.restored_step: int | None = None

    @property
    def alive(self) -> bool:
        return self.state == "live"


class _InFlightTick:
    """One dispatched-but-not-yet-composed tick of the pipeline.

    ``pending`` maps each dispatched worker's pipe to its handle until
    the ack arrives; ``acks`` collects ``shard_index -> (refit,
    model_version)`` as acks are harvested. Composition keys off
    ``acks`` — a shard that failed (or went live again) between
    dispatch and collect has no ack for this step and its rows resolve
    through the degraded path.
    """

    __slots__ = ("step", "arr", "pending", "acks", "t0")

    def __init__(self, step: int, arr: np.ndarray, t0: float) -> None:
        self.step = step
        self.arr = arr
        self.pending: dict[Any, _ShardHandle] = {}
        self.acks: dict[int, tuple[bool, int]] = {}
        self.t0 = t0


class ShardedFleetPredictor:
    """Drive N streams through ``shards`` supervised FleetPredictor workers.

    Parameters
    ----------
    n_streams:
        Total streams in the fleet; each tick is ``(n_streams, features)``
        (or ``(n_streams,)`` univariate).
    shards:
        Worker process count; streams partition contiguously and evenly
        (:func:`shard_boundaries`). ``shards=1`` is bit-identical to a
        single-process :class:`FleetPredictor`.
    pipeline:
        ``True`` makes :meth:`run` drive a two-deep tick pipeline:
        tick *t+1* is staged into the other shm bank and dispatched
        *before* tick *t* is harvested, so coordinator-side composition
        overlaps shard compute. Predictions are bit-identical either
        way (the workers run the same computation in the same order);
        only wall-clock changes. ``False`` (default) keeps the
        historical lock-step barrier. Custom drivers can pipeline
        explicitly via :meth:`submit_tick` / :meth:`collect_tick`.
    tick_timeout:
        Seconds the coordinator budgets for one tick's whole fan-in —
        a *shared* per-tick deadline over all outstanding shards, not a
        per-shard charge, so k slow shards cost one timeout, never
        k × timeout. This is what detects a *hung* worker, not just a
        dead pipe (``None`` blocks until the pipe closes — a killed
        worker still fails fast via EOF, but a deadlocked one stalls
        the fleet).
    control_timeout:
        Deadline for the rare-path commands (``stats``/``save``/
        ``load``/``metrics``); a worker that misses it is marked failed
        the same way a tick timeout does.
    respawn:
        :class:`RespawnPolicy` for supervised recovery, or ``None`` to
        disable the supervisor entirely — then any failure is terminal
        (immediate quarantine, the pre-supervision behavior).
    checkpoint_dir:
        Directory for per-shard background checkpoints
        (``shard-NNN.ckpt``). Enables background checkpointing; respawned
        workers restore from the latest intact snapshot found here.
    checkpoint_interval:
        Background checkpoint cadence in fleet ticks (default 64 when
        ``checkpoint_dir`` is set). Requires ``checkpoint_dir``.
    chaos:
        Optional :class:`~repro.streaming.faults.ChaosSchedule` of
        process faults forwarded to the workers — test harness only.
    registry:
        Parent-side :class:`~repro.obs.MetricRegistry` for coordinator
        instruments and the worker metric merge at :meth:`close`.
    fleet_kwargs:
        Every remaining keyword is forwarded verbatim to each worker's
        :class:`FleetPredictor` (``window``, ``refit_interval``,
        ``gate_policy``, ...). They must be picklable (they cross the
        spawn boundary once per worker start); ``refit_fault_hook`` is
        rejected — a live callable cannot cross process boundaries.
    """

    def __init__(
        self,
        n_streams: int,
        shards: int = 2,
        *,
        pipeline: bool = False,
        tick_timeout: float | None = 60.0,
        control_timeout: float | None = 60.0,
        respawn: RespawnPolicy | None = RespawnPolicy(),
        checkpoint_dir: str | Path | None = None,
        checkpoint_interval: int | None = None,
        chaos: ChaosSchedule | None = None,
        registry: MetricRegistry | None = None,
        **fleet_kwargs: Any,
    ) -> None:
        if n_streams < 1:
            raise ValueError(f"n_streams must be >= 1, got {n_streams}")
        for forbidden in ("n_streams", "registry", "refit_fault_hook"):
            if forbidden in fleet_kwargs:
                raise ValueError(
                    f"{forbidden!r} cannot be passed through to shard workers"
                )
        if checkpoint_interval is not None and checkpoint_interval < 1:
            raise ValueError(
                f"checkpoint_interval must be >= 1, got {checkpoint_interval}"
            )
        if checkpoint_interval is not None and checkpoint_dir is None:
            raise ValueError("checkpoint_interval requires checkpoint_dir")
        self.n_streams = n_streams
        self.shards = shards
        self.boundaries = shard_boundaries(n_streams, shards)
        self.pipeline = bool(pipeline)
        self.tick_timeout = tick_timeout
        self.control_timeout = control_timeout
        self.respawn = respawn
        if chaos is not None and chaos.max_shard() >= shards:
            raise ValueError(
                f"chaos schedule references shard {chaos.max_shard()}, "
                f"fleet has {shards}"
            )
        self.chaos = chaos
        self._chaos_by_shard: list[dict[int, ProcessFault] | None] | None = None
        if chaos is not None and len(chaos):
            self._chaos_by_shard = [chaos.for_shard(i) or None for i in range(shards)]
        if checkpoint_dir is not None:
            self.checkpoint_dir: Path | None = Path(checkpoint_dir)
            self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
            self.checkpoint_interval: int | None = (
                64 if checkpoint_interval is None else int(checkpoint_interval)
            )
        else:
            self.checkpoint_dir = None
            self.checkpoint_interval = None
        self.fleet_kwargs = dict(fleet_kwargs)
        cfg = {**_FLEET_DEFAULTS, **self.fleet_kwargs}
        self.features = int(cfg["features"])
        self.target_col = int(cfg["target_col"])
        self.window = int(cfg["window"])
        self.buffer_capacity = int(cfg["buffer_capacity"])
        self.forecaster_name = str(cfg["forecaster_name"])

        self._registry = get_registry(registry)
        self._h_latency = MetricHistogram(
            "serving_shard_tick_seconds",
            "per-tick sharded-fleet latency (fan-out + shards + fan-in)",
            buckets=log_buckets(1e-6, 10.0),
        )
        self._g_throughput = MetricGauge(
            "serving_shard_records_per_sec", "instantaneous sharded-fleet throughput"
        )
        self._c_ticks = MetricCounter(
            "serving_shard_ticks_total", "fleet ticks driven through the shard pool"
        )
        self._c_failures = MetricCounter(
            "serving_shard_worker_failures_total",
            "shard workers declared dead or hung by the coordinator",
        )
        self._c_respawns = MetricCounter(
            "serving_shard_respawns_total",
            "shard workers respawned by the supervisor",
        )
        self._c_quarantines = MetricCounter(
            "serving_shard_quarantines_total",
            "shards durably quarantined by the crash-loop breaker",
        )
        self._h_recovery = MetricHistogram(
            "serving_shard_recovery_ticks",
            "fleet ticks from shard failure to a restored live worker",
            buckets=log_buckets(1.0, 4096.0),
        )
        self._g_staleness = MetricGauge(
            "serving_shard_staleness_ticks",
            "worst-case held-prediction age across recovering shards (ticks)",
        )
        for inst in (
            self._h_latency,
            self._g_throughput,
            self._c_ticks,
            self._c_failures,
            self._c_respawns,
            self._c_quarantines,
            self._h_recovery,
            self._g_staleness,
        ):
            self._registry.register(inst)

        self._step = 0  #: ticks composed (collected) so far
        self._submitted = 0  #: ticks dispatched to the workers so far
        self._inflight: deque[_InFlightTick] = deque()
        self._closed = False
        self.worker_failures = 0
        self.respawns = 0
        self.errors: list[str] = []
        self._last_predictions = np.full(n_streams, np.nan)
        #: ticks from the most recent shard failure to its restored worker
        self.last_recovery_ticks: int | None = None
        #: per-shard model version as carried by the latest tick ack —
        #: async-refit swaps are adopted event-driven, on the ack itself
        self._shard_versions = np.zeros(shards, dtype=np.int64)
        self._last_compose_t: float | None = None

        self._specs = _tick_specs(n_streams, self.features)
        self._shared_specs = ring_specs(n_streams, self.buffer_capacity, self.features)
        self._block = SlottedShmBlock.create(
            self._specs, _TICK_BANKS, shared=self._shared_specs
        )
        for slot in range(_TICK_BANKS):
            self._block["ticks_in", slot][...] = np.nan
        self._ring: SharedMatrixRingBuffer | None = SharedMatrixRingBuffer.from_arrays(
            self._block["ring_data"], self._block["ring_head"], self._block["ring_size"]
        )

        self._ctx = get_context("spawn")
        self._handles: list[_ShardHandle] = []
        try:
            for i in range(shards):
                lo, hi = self.boundaries[i], self.boundaries[i + 1]
                proc, conn = self._spawn_worker(i, lo, hi, restore=False)
                self._handles.append(_ShardHandle(i, lo, hi, proc, conn))
            for h in self._handles:
                if not h.conn.poll(_STARTUP_TIMEOUT):
                    raise RuntimeError(
                        f"shard {h.index} did not report ready within "
                        f"{_STARTUP_TIMEOUT}s"
                    )
                reply = h.conn.recv()
                if not (isinstance(reply, tuple) and reply and reply[0] == "ready"):
                    detail = ""
                    if isinstance(reply, tuple) and len(reply) >= 3:
                        detail = f": {reply[1]}\n{reply[2]}"
                    raise RuntimeError(f"shard {h.index} failed to start{detail}")
                h.restored_step = reply[3] if len(reply) > 3 else None
        except Exception:
            self.close(collect_metrics=False)
            raise

    # -- lifecycle --------------------------------------------------------------

    def __enter__(self) -> "ShardedFleetPredictor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover — GC safety net
        try:
            self.close(collect_metrics=False)
        except Exception:  # noqa: BLE001
            pass

    def _checkpoint_path(self, index: int) -> Path | None:
        if self.checkpoint_dir is None:
            return None
        return self.checkpoint_dir / f"shard-{index:03d}.ckpt"

    def _spawn_worker(
        self, index: int, lo: int, hi: int, restore: bool
    ) -> tuple[Any, Any]:
        """Start one worker process; returns ``(proc, parent_conn)``."""
        ckpt = self._checkpoint_path(index)
        restore_path = None
        if restore and ckpt is not None and ckpt.exists():
            restore_path = str(ckpt)
        chaos = None
        if self._chaos_by_shard is not None:
            chaos = self._chaos_by_shard[index]
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_shard_worker,
            args=(
                child_conn,
                self._block.name,
                self._specs,
                self._shared_specs,
                index,
                lo,
                hi,
                self.fleet_kwargs,
                restore_path,
                str(ckpt) if ckpt is not None else None,
                self.checkpoint_interval,
                chaos,
            ),
            daemon=True,
            name=f"fleet-shard-{index}",
        )
        proc.start()
        child_conn.close()
        return proc, parent_conn

    @property
    def failed_shards(self) -> tuple[int, ...]:
        """Indices of shards whose worker is not currently live."""
        return tuple(h.index for h in self._handles if h.state != "live")

    @property
    def recovering_shards(self) -> tuple[int, ...]:
        """Shards that are down but still eligible for supervised recovery."""
        return tuple(
            h.index for h in self._handles if h.state in ("down", "respawning")
        )

    @property
    def quarantined_shards(self) -> tuple[int, ...]:
        """Shards the crash-loop breaker has durably taken out of service."""
        return tuple(h.index for h in self._handles if h.state == "quarantined")

    # -- failure handling / supervision -------------------------------------------

    def _mark_failed(self, handle: _ShardHandle, reason: str) -> None:
        if handle.state not in ("live", "respawning"):
            return
        handle.state = "down"
        self.worker_failures += 1
        self._c_failures.inc()
        msg = f"shard {handle.index} (streams [{handle.lo}, {handle.hi})) failed: {reason}"
        self.errors.append(msg)
        if len(self.errors) > 64:
            del self.errors[:-64]
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover
            pass
        # escalate terminate → kill: a hung (e.g. stopped or deadlocked)
        # worker ignores SIGTERM, and a half-dead worker left attached to
        # the shm slice could race its replacement
        if handle.proc.is_alive():
            handle.proc.terminate()
            handle.proc.join(timeout=2.0)
        if handle.proc.is_alive():
            handle.proc.kill()
            handle.proc.join(timeout=5.0)
        if handle.failed_step is None:
            handle.failed_step = self._step
        handle.failure_steps.append(self._step)
        policy = self.respawn
        if policy is not None:
            cutoff = self._step - policy.failure_window
            handle.failure_steps = [s for s in handle.failure_steps if s > cutoff]
        handle.consecutive_failures += 1
        if policy is None or len(handle.failure_steps) >= policy.max_failures:
            handle.state = "quarantined"
            handle.failed_step = None
            self._c_quarantines.inc()
        else:
            delay = min(
                policy.backoff_ticks * 2 ** (handle.consecutive_failures - 1),
                policy.backoff_max_ticks,
            )
            handle.next_respawn_step = self._step + delay

    def _supervise(self) -> None:
        """One supervision pass: respawn due shards, absorb ready workers.

        Runs at the top of every :meth:`process_tick`; never blocks —
        ready handshakes are polled with a zero timeout, so a shard that
        is still importing numpy simply stays ``respawning`` (held rows)
        for another tick.
        """
        if self.respawn is None:
            return
        for h in self._handles:
            if h.state == "down" and self._step >= h.next_respawn_step:
                h.state = "respawning"
                self.respawns += 1
                self._c_respawns.inc()
                try:
                    h.proc, h.conn = self._spawn_worker(
                        h.index, h.lo, h.hi, restore=True
                    )
                except Exception as exc:  # noqa: BLE001 — spawn itself can fail
                    self._mark_failed(h, f"respawn failed: {exc}")
                    continue
            if h.state == "respawning":
                try:
                    if not h.conn.poll(0):
                        if not h.proc.is_alive():
                            self._mark_failed(h, "worker died before reporting ready")
                        continue
                    reply = h.conn.recv()
                except (EOFError, OSError) as exc:
                    self._mark_failed(h, f"pipe closed during respawn ({exc})")
                    continue
                if not (isinstance(reply, tuple) and reply and reply[0] == "ready"):
                    detail = (
                        reply[1]
                        if isinstance(reply, tuple) and len(reply) > 1
                        else repr(reply)
                    )
                    self._mark_failed(h, f"respawn startup failed: {detail}")
                    continue
                h.restored_step = reply[3] if len(reply) > 3 else None
                # recovery accounting is pure bookkeeping; only the histogram
                # observation is conditional on obs — a disabled registry must
                # never change supervision state or recovery-tick arithmetic
                if h.failed_step is not None:
                    self.last_recovery_ticks = self._step - h.failed_step
                    if is_enabled():
                        self._h_recovery.observe(float(self.last_recovery_ticks))
                h.state = "live"
                h.consecutive_failures = 0
                h.failed_step = None

    def _live(self) -> list[_ShardHandle]:
        if self._closed:
            raise RuntimeError("ShardedFleetPredictor is closed")
        return [h for h in self._handles if h.state == "live"]

    # -- serving ----------------------------------------------------------------

    @property
    def inflight(self) -> int:
        """Ticks dispatched but not yet collected (0 outside a pipeline)."""
        return len(self._inflight)

    def _assert_no_inflight(self, what: str) -> None:
        if self._inflight:
            raise RuntimeError(
                f"{what} requires an idle tick pipeline; "
                f"{len(self._inflight)} tick(s) in flight — collect_tick() first"
            )

    def submit_tick(self, tick: np.ndarray) -> int:
        """Stage one tick into the next shm bank and dispatch it; returns its step.

        At most :data:`_TICK_BANKS` ticks may be in flight — a third
        submit would overwrite the bank the oldest outstanding tick is
        still being computed in. Raises :class:`AllShardsFailedError`
        once every shard is quarantined.
        """
        if self._closed:
            raise RuntimeError("ShardedFleetPredictor is closed")
        if len(self._inflight) >= _TICK_BANKS:
            raise RuntimeError(
                f"tick pipeline is full ({_TICK_BANKS} in flight) — "
                "collect_tick() before submitting more"
            )
        self._supervise()
        live = [h for h in self._handles if h.state == "live"]
        if not live and all(h.state == "quarantined" for h in self._handles):
            recent = "; ".join(self.errors[-3:])
            raise AllShardsFailedError(
                f"all {self.shards} shards are quarantined after repeated "
                f"failures — refusing to serve an all-NaN fleet (recent: {recent})"
            )
        arr = np.asarray(tick, float)
        if arr.ndim == 1 and self.features == 1:
            arr = arr[:, None]
        if arr.shape != (self.n_streams, self.features):
            raise ValueError(
                f"expected tick of shape ({self.n_streams}, {self.features}), "
                f"got {arr.shape}"
            )
        step = self._submitted
        entry = _InFlightTick(step, arr, time.perf_counter())
        self._block.bank(step)["ticks_in"][...] = arr
        for h in live:
            try:
                h.conn.send(("tick", step))
                entry.pending[h.conn] = h
            except (BrokenPipeError, OSError) as exc:
                self._mark_failed(h, f"pipe closed on dispatch ({exc})")
        self._inflight.append(entry)
        self._submitted += 1
        return step

    def _fan_in(self, entry: _InFlightTick) -> None:
        """Harvest every outstanding ack of ``entry`` under one shared deadline.

        ``multiprocessing.connection.wait`` multiplexes all pending
        pipes, so fast shards are absorbed the moment they ack and slow
        ones burn down *one* per-tick budget concurrently — the
        worst case is ``tick_timeout``, never ``shards × tick_timeout``.
        """
        # a shard that failed — or was respawned onto a fresh pipe — since
        # dispatch cannot ack this step anymore; its rows resolve through
        # the degraded path (conn identity catches the respawn case)
        pending = {
            c: h
            for c, h in entry.pending.items()
            if h.state == "live" and h.conn is c
        }
        deadline = (
            None if self.tick_timeout is None else entry.t0 + self.tick_timeout
        )
        while pending:
            if deadline is None:
                ready = _conn_wait(list(pending))
            else:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    for h in pending.values():
                        kind = "hung" if h.proc.is_alive() else "dead"
                        self._mark_failed(
                            h,
                            f"no tick reply within {self.tick_timeout}s "
                            f"({kind} worker)",
                        )
                    return
                ready = _conn_wait(list(pending), remaining)
                if not ready:
                    continue
            for conn in ready:
                h = pending.pop(conn)
                try:
                    reply = conn.recv()
                    if not (isinstance(reply, tuple) and reply and reply[0] == "ok"):
                        if (
                            isinstance(reply, tuple)
                            and len(reply) > 1
                            and reply[0] == "error"
                        ):
                            raise RuntimeError(f"tick errored in worker: {reply[1]}")
                        raise RuntimeError(f"corrupt tick reply: {reply!r}")
                    if len(reply) > 1 and reply[1] != entry.step:
                        raise RuntimeError(
                            f"tick ack for step {reply[1]!r}, expected {entry.step}"
                        )
                except (EOFError, OSError, RuntimeError) as exc:
                    self._mark_failed(h, str(exc))
                    continue
                refit = bool(reply[2]) if len(reply) > 2 else False
                version = int(reply[3]) if len(reply) > 3 else 0
                entry.acks[h.index] = (refit, version)
                # event-driven swap adoption: the shard's live model version
                # lands the moment its ack does, not at the next barrier
                self._shard_versions[h.index] = version

    def collect_tick(self) -> FleetTick:
        """Harvest and compose the oldest in-flight tick.

        Rows of a shard under supervised recovery hold the last served
        prediction (``health=3``, RECOVERING); rows of a quarantined
        shard are NaN (``health=2``). A shard that died with this tick
        in flight resolves the same way — every in-flight step it was
        dispatched degrades, none is silently dropped.
        """
        if self._closed:
            raise RuntimeError("ShardedFleetPredictor is closed")
        if not self._inflight:
            raise RuntimeError("no tick in flight — submit_tick() first")
        entry = self._inflight.popleft()
        self._fan_in(entry)

        bank = self._block.bank(entry.step)
        cols = TickColumns.harvest(*(bank[f] for f in _TICK_OUT_FIELDS))
        served_mask = np.zeros(self.n_streams, dtype=bool)
        refit = False
        staleness = 0
        # each shard refits independently, so per-shard versions diverge; the
        # composed tick reports the *minimum* across acked shards — the most
        # conservative "every stream is served by at least this version"
        acked_versions: list[int] = []
        for h in self._handles:
            sl = slice(h.lo, h.hi)
            ack = entry.acks.get(h.index)
            if ack is not None:
                served_mask[sl] = True
                refit = refit or ack[0]
                acked_versions.append(ack[1])
            elif h.state == "quarantined":
                cols.quarantine_rows(
                    sl,
                    entry.arr[sl, self.target_col],
                    health_level=_DEAD_HEALTH,
                    gate_action=_DEAD_GATED,
                )
            else:  # down / respawning / freshly-respawned — hold the last prediction
                cols.hold_rows(
                    sl,
                    entry.arr[sl, self.target_col],
                    self._last_predictions[sl],
                    health_level=_RECOVERING_HEALTH,
                    gate_action=_DEAD_GATED,
                )
                if h.failed_step is not None:
                    staleness = max(staleness, entry.step - h.failed_step + 1)
        upd = served_mask & np.isfinite(cols.predictions)
        self._last_predictions[upd] = cols.predictions[upd]

        # serving bookkeeping runs unconditionally — only the instrument
        # writes below are gated on obs, so a disabled registry can never
        # skew step, staleness or recovery-tick accounting
        self._step += 1
        now = time.perf_counter()
        elapsed = now - entry.t0
        # pipelined ticks overlap, so per-tick wall clock is the compose-to-
        # compose gap; the submit-to-collect elapsed is the serving latency
        gap = elapsed if self._last_compose_t is None else now - self._last_compose_t
        self._last_compose_t = now
        if is_enabled():
            self._h_latency.observe(elapsed)
            self._c_ticks.inc()
            self._g_staleness.set(float(staleness))
            if gap > 0:
                self._g_throughput.set(self.n_streams / gap)
        return cols.finish(
            step=entry.step,
            refit=refit,
            model_version=min(acked_versions) if acked_versions else 0,
        )

    def process_tick(self, tick: np.ndarray) -> FleetTick:
        """One fleet step across every live shard (submit + collect barrier).

        See :meth:`collect_tick` for the degraded-row semantics. Cannot
        be interleaved with an explicitly pipelined submit — collect
        outstanding ticks first.
        """
        self._assert_no_inflight("process_tick")
        self.submit_tick(tick)
        return self.collect_tick()

    def run(self, ticks: np.ndarray) -> list[FleetTick]:
        """Process a ``(T, n_streams[, features])`` tick matrix sequentially.

        With ``pipeline=True`` the loop is two-deep: tick *t+1* is
        staged and dispatched before tick *t* is harvested, overlapping
        coordinator-side composition with shard compute. Outputs are
        bit-identical to the barrier loop either way.
        """
        ticks = np.asarray(ticks, float)
        if ticks.ndim == 2 and self.features == 1:
            ticks = ticks[:, :, None]
        with obs_trace.span("serving.shard_run") as sp:
            if not self.pipeline or len(ticks) < 2:
                out = [self.process_tick(t) for t in ticks]
            else:
                self._assert_no_inflight("run")
                out = []
                try:
                    self.submit_tick(ticks[0])
                    for t in ticks[1:]:
                        self.submit_tick(t)
                        out.append(self.collect_tick())
                    out.append(self.collect_tick())
                except BaseException:
                    self._drain_inflight()
                    raise
            sp.add("ticks", len(out))
            sp.add("records", len(out) * self.n_streams)
            sp.add("pipeline", self.pipeline)
        return out

    def _drain_inflight(self) -> None:
        """Best-effort absorb outstanding tick acks (error paths + close).

        The results are discarded — this only clears the pipes so later
        control traffic (metrics harvest, stop tokens) cannot mistake a
        stale tick ack for its reply.
        """
        while self._inflight:
            entry = self._inflight.popleft()
            for conn, h in entry.pending.items():
                if h.state != "live" or h.conn is not conn:
                    continue
                try:
                    if conn.poll(min(self.tick_timeout or 5.0, 5.0)):
                        conn.recv()
                except (EOFError, OSError):
                    self._mark_failed(h, "pipe closed while draining the pipeline")

    def stream_history(self, stream: int) -> np.ndarray:
        """One stream's buffered records, oldest first — zero-IPC shm read.

        Safe between ticks (the coordinator and the workers alternate on
        the tick protocol, so no worker is writing while this reads).
        """
        if self._ring is None:
            raise RuntimeError("ShardedFleetPredictor is closed")
        self._assert_no_inflight("stream_history")
        if not 0 <= stream < self.n_streams:
            raise IndexError(f"stream must be in [0, {self.n_streams}), got {stream}")
        return self._ring.view(stream)

    # -- introspection -----------------------------------------------------------

    def _request(self, handle: _ShardHandle, command: tuple, expect: str) -> Any:
        """Send one control command and return its payload.

        Every control exchange observes ``control_timeout``: a worker
        that misses the deadline is classified hung/dead, escalated and
        marked failed exactly like a tick timeout — no control path can
        wedge the coordinator.
        """
        # a control recv while a tick is in flight would swallow the tick
        # ack (both travel the same pipe) — the pipeline must be idle
        self._assert_no_inflight(f"control command {command[0]!r}")
        if handle.state != "live":
            raise RuntimeError(
                f"shard {handle.index} is {handle.state}; "
                f"control command {command[0]!r} needs a live worker"
            )
        try:
            handle.conn.send(command)
            if self.control_timeout is not None and not handle.conn.poll(
                self.control_timeout
            ):
                kind = "hung" if handle.proc.is_alive() else "dead"
                self._mark_failed(
                    handle,
                    f"no {command[0]!r} reply within {self.control_timeout}s "
                    f"({kind} worker)",
                )
                raise RuntimeError(
                    f"shard {handle.index} did not reply to {command[0]!r} "
                    f"within {self.control_timeout}s ({kind} worker)"
                )
            reply = handle.conn.recv()
        except (BrokenPipeError, EOFError, OSError) as exc:
            self._mark_failed(handle, f"pipe closed during {command[0]!r} ({exc})")
            raise RuntimeError(
                f"shard {handle.index} died during {command[0]!r}"
            ) from exc
        if not isinstance(reply, tuple) or not reply:
            raise RuntimeError(
                f"shard {handle.index} sent corrupt reply to {command[0]!r}: {reply!r}"
            )
        if reply[0] == "error":
            raise RuntimeError(f"shard {handle.index} {command[0]!r} failed: {reply[1]}")
        if reply[0] != expect:
            raise RuntimeError(
                f"shard {handle.index} replied {reply[0]!r} to {command[0]!r}"
            )
        return reply[1] if len(reply) > 1 else None

    def stats(self) -> dict[str, Any]:
        """Fleet-wide serving statistics plus per-shard detail and failures."""
        self._assert_no_inflight("stats")
        per_shard: list[dict[str, Any]] = []
        totals = {"n_predictions": 0, "sum_abs_error": 0.0, "n_refits": 0,
                  "n_refit_failures": 0, "n_drifts": 0, "n_quarantined": 0}
        for h in self._handles:
            if h.state != "live":
                per_shard.append(
                    {"shard": h.index, "streams": h.hi - h.lo, "ok": False,
                     "state": h.state}
                )
                continue
            try:
                payload = self._request(h, ("stats",), "stats")
            except RuntimeError:
                per_shard.append(
                    {"shard": h.index, "streams": h.hi - h.lo, "ok": False,
                     "state": h.state}
                )
                continue
            payload = {
                "shard": h.index,
                "ok": True,
                "state": "live",
                "restored_step": h.restored_step,
                **payload,
            }
            per_shard.append(payload)
            for key in totals:
                totals[key] += payload[key]
        fleet_mae = totals["sum_abs_error"] / max(totals["n_predictions"], 1)
        return {
            "n_streams": self.n_streams,
            "shards": self.shards,
            "step": self._step,
            "worker_failures": self.worker_failures,
            "respawns": self.respawns,
            "failed_shards": list(self.failed_shards),
            "recovering_shards": list(self.recovering_shards),
            "quarantined_shards": list(self.quarantined_shards),
            "errors": list(self.errors),
            "fleet_mae": fleet_mae,
            **totals,
            "per_shard": per_shard,
        }

    # -- checkpoint / restore ----------------------------------------------------

    def _config_dict(self) -> dict[str, Any]:
        return {
            "n_streams": self.n_streams,
            "shards": self.shards,
            "boundaries": list(self.boundaries),
            "features": self.features,
            "window": self.window,
            "buffer_capacity": self.buffer_capacity,
            "forecaster_name": self.forecaster_name,
            "tick_timeout": self.tick_timeout,
            "control_timeout": self.control_timeout,
            "respawn": self.respawn,
            "checkpoint_dir": (
                str(self.checkpoint_dir) if self.checkpoint_dir is not None else None
            ),
            "checkpoint_interval": self.checkpoint_interval,
            "pipeline": self.pipeline,
            "fleet_kwargs": dict(self.fleet_kwargs),
        }

    def save(self, path: str | Path) -> None:
        """Compose every shard's state into one crash-safe fleet snapshot.

        Refuses to checkpoint a degraded fleet: a snapshot missing a
        shard could silently restore a smaller fleet.
        """
        self._assert_no_inflight("save")
        if self.failed_shards:
            raise RuntimeError(
                f"cannot checkpoint with failed shards {list(self.failed_shards)}"
            )
        shard_states = [self._request(h, ("state",), "state") for h in self._live()]
        write_checkpoint(
            path,
            {
                "kind": "sharded_fleet_predictor",
                "state": {
                    "config": self._config_dict(),
                    "step": self._step,
                    "shard_states": shard_states,
                },
            },
        )

    def load_state(self, state: dict[str, Any]) -> None:
        """Adopt a composed snapshot; every shard must match its saved config."""
        cfg = state["config"]
        if (
            cfg["n_streams"] != self.n_streams
            or cfg["shards"] != self.shards
            or list(cfg["boundaries"]) != list(self.boundaries)
            or cfg["features"] != self.features
            or cfg["window"] != self.window
            or cfg["buffer_capacity"] != self.buffer_capacity
            or cfg["forecaster_name"] != self.forecaster_name
        ):
            raise CheckpointError(
                "sharded checkpoint config mismatch: saved "
                f"(streams={cfg['n_streams']}, shards={cfg['shards']}, "
                f"forecaster={cfg['forecaster_name']}, window={cfg['window']}, "
                f"features={cfg['features']}, capacity={cfg['buffer_capacity']}) vs live "
                f"(streams={self.n_streams}, shards={self.shards}, "
                f"forecaster={self.forecaster_name}, window={self.window}, "
                f"features={self.features}, capacity={self.buffer_capacity})"
            )
        if self.failed_shards:
            raise CheckpointError(
                f"cannot load a fleet snapshot with failed shards "
                f"{list(self.failed_shards)}"
            )
        shard_states = state["shard_states"]
        if len(shard_states) != self.shards:
            raise CheckpointError(
                f"snapshot holds {len(shard_states)} shard states, need {self.shards}"
            )
        for h, shard_state in zip(self._live(), shard_states):
            try:
                self._request(h, ("load", shard_state), "ok")
            except RuntimeError as exc:
                raise CheckpointError(str(exc)) from exc
        self._step = int(state["step"])
        self._submitted = self._step
        self._last_compose_t = None
        self._last_predictions[:] = np.nan

    @classmethod
    def restore(cls, path: str | Path, **overrides: Any) -> "ShardedFleetPredictor":
        """Rebuild the sharded fleet from a composed snapshot and resume."""
        artifact = read_checkpoint(path)
        if not isinstance(artifact, dict) or artifact.get("kind") != "sharded_fleet_predictor":
            raise CheckpointError(
                f"{path} does not hold a ShardedFleetPredictor checkpoint"
            )
        state = artifact["state"]
        cfg = state["config"]
        kwargs: dict[str, Any] = {
            "shards": cfg["shards"],
            "tick_timeout": cfg["tick_timeout"],
            "control_timeout": cfg.get("control_timeout", 60.0),
            "respawn": cfg.get("respawn", RespawnPolicy()),
            "checkpoint_dir": cfg.get("checkpoint_dir"),
            "checkpoint_interval": cfg.get("checkpoint_interval"),
            "pipeline": cfg.get("pipeline", False),
            **cfg["fleet_kwargs"],
        }
        kwargs.update(overrides)
        predictor = cls(cfg["n_streams"], **kwargs)
        try:
            predictor.load_state(state)
        except Exception:
            predictor.close(collect_metrics=False)
            raise
        return predictor

    # -- observability merge / shutdown ------------------------------------------

    def _harvest_metrics(self, handle: _ShardHandle) -> None:
        """Adopt one worker's metric series and revive its spans (once)."""
        try:
            handle.conn.send(("metrics",))
            timeout = 30.0 if self.control_timeout is None else self.control_timeout
            if not handle.conn.poll(timeout):
                return
            reply = handle.conn.recv()
        except (BrokenPipeError, EOFError, OSError):
            return
        if not (isinstance(reply, tuple) and len(reply) == 3 and reply[0] == "metrics"):
            return
        _, series, spans = reply
        self._registry.adopt_series(series)
        labeled = []
        for entry in series:
            if entry.get("name") == "serving_fleet_tick_seconds":
                entry = dict(entry)
                entry["labels"] = {
                    **dict(entry.get("labels") or {}),
                    "shard": str(handle.index),
                }
                labeled.append(entry)
        if labeled:
            self._registry.adopt_series(labeled)
        # imported here: experiments.parallel pulls in the experiments package,
        # which imports repro.streaming — a cycle at module-import time
        from ..experiments.parallel import revive_span

        tracer = obs_trace.default_tracer()
        for span_data in spans:
            revive_span(span_data, tracer)

    def close(self, collect_metrics: bool = True) -> None:
        """Stop every worker, merge their metrics, release the shm segment.

        Live workers get a graceful stop (metrics harvest + ``stop``
        token + bounded join); anything else — down, respawning,
        quarantined — is escalated terminate → kill so close never
        blocks on a worker that cannot answer.
        """
        if self._closed:
            return
        # absorb outstanding tick acks first — the metrics harvest and the
        # stop handshake share the pipes, and a queued tick ack would be
        # mistaken for their replies
        if getattr(self, "_inflight", None):
            self._drain_inflight()
        self._closed = True
        for h in getattr(self, "_handles", []):
            graceful = h.state == "live"
            if graceful:
                if collect_metrics:
                    self._harvest_metrics(h)
                try:
                    h.conn.send(("stop",))
                    if h.conn.poll(5.0):
                        h.conn.recv()
                except (BrokenPipeError, EOFError, OSError):
                    pass
            h.state = "closed"
            try:
                h.conn.close()
            except OSError:  # pragma: no cover
                pass
            if graceful:
                h.proc.join(timeout=5.0)
            if h.proc.is_alive():
                h.proc.terminate()
                h.proc.join(timeout=2.0)
            if h.proc.is_alive():  # pragma: no cover — worker ignoring SIGTERM
                h.proc.kill()
                h.proc.join(timeout=5.0)
        self._ring = None  # drop shm views before the owning block unmaps
        if getattr(self, "_block", None) is not None:
            self._block.close()
            self._block = None
