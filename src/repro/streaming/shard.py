"""Sharded multi-process fleet serving over shared-memory ring buffers.

:class:`~repro.streaming.fleet.FleetPredictor` vectorizes a whole fleet
into one process; on a multi-core host that one process is the ceiling.
:class:`ShardedFleetPredictor` removes it by partitioning the N streams
of a fleet across a pool of **persistent** worker processes, each
running its own :class:`FleetPredictor` shard, and driving them in
lock-step, one tick at a time:

* the coordinator writes the ``(N, F)`` tick into a shared-memory block
  (:class:`~repro.streaming.shm.ShmBlock`) and sends each worker a
  constant-size control token — per-tick traffic over the pipes is
  O(shards), never O(N), and no record is ever pickled on the hot path;
* each worker reads its contiguous row-slice of the tick, runs its
  shard's ``process_tick``, and writes the columnar
  :class:`~repro.streaming.fleet.FleetTick` mirror (predictions,
  actuals, errors, drift, health, gate actions) back into the same
  block;
* worker stream histories live in a fleet-wide
  :class:`~repro.streaming.shm.SharedMatrixRingBuffer`, so the
  coordinator can read any stream's recent records zero-copy
  (:meth:`ShardedFleetPredictor.stream_history`) without interrupting a
  worker;
* the whole fleet checkpoints as **one** artifact: the coordinator
  collects every shard's ``state_dict`` (rare path — the pipe is fine
  there) and composes them with the fleet config; restore rejects
  config mismatches and resumes every shard bit-for-bit;
* worker observability merges on :meth:`close` through the same
  ``adopt_series`` / span-revival path the parallel experiment runner
  uses — per-shard tick-latency histograms are adopted both fleet-wide
  (same-name series sum) and under a ``shard`` label.

**Exactness contract:** with ``shards=1`` every
:class:`~repro.streaming.fleet.FleetTick` is bit-identical to a
single-process :class:`FleetPredictor` fed the same ticks, including
across a mid-stream snapshot/restore (asserted in
``tests/streaming/test_shard.py``). With ``shards > 1`` the semantics
deliberately change in exactly one way: the shared model and the refit
clock become *per-shard* (shard-local pooled refits) instead of
fleet-global — the same trade the fleet made against the scalar
predictor, one level up.

**Fault isolation:** a worker that dies (crash, OOM-kill, ``SIGKILL``)
takes only its own streams down. Its rows report NaN predictions with
``health=2`` and a quarantine gate code from then on, the failure is
counted in :meth:`stats` and the
``serving_shard_worker_failures_total`` counter, and the surviving
shards keep serving untouched ticks bit-identically.
"""

from __future__ import annotations

import time
import traceback as _traceback
from multiprocessing import get_context
from pathlib import Path
from typing import Any

import numpy as np

from ..obs import trace as obs_trace
from ..obs.registry import Counter as MetricCounter
from ..obs.registry import Gauge as MetricGauge
from ..obs.registry import Histogram as MetricHistogram
from ..obs.registry import MetricRegistry, get_registry, is_enabled, log_buckets
from .checkpoint import CheckpointError, read_checkpoint, write_checkpoint
from .fleet import FleetPredictor, FleetTick
from .resilience import GATE_QUARANTINE
from .shm import ShmArraySpec, ShmBlock, SharedMatrixRingBuffer, ring_specs

__all__ = ["ShardedFleetPredictor", "shard_boundaries"]

#: gate action code and health level stamped on rows of a dead shard
_DEAD_GATED = GATE_QUARANTINE
_DEAD_HEALTH = 2

#: FleetPredictor constructor defaults the coordinator must mirror when a
#: kwarg is left unset (config snapshots and shm sizing depend on them)
_FLEET_DEFAULTS = {
    "forecaster_name": "xgboost",
    "window": 12,
    "buffer_capacity": 600,
    "features": 1,
    "target_col": 0,
}


def shard_boundaries(n_streams: int, shards: int) -> tuple[int, ...]:
    """Contiguous, balanced partition bounds: shard ``i`` owns ``[b[i], b[i+1])``."""
    if shards < 1 or shards > n_streams:
        raise ValueError(
            f"shards must be in [1, n_streams={n_streams}], got {shards}"
        )
    return tuple((i * n_streams) // shards for i in range(shards + 1))


def _tick_specs(n_streams: int, features: int, shards: int) -> tuple[ShmArraySpec, ...]:
    """The per-tick fan-out/fan-in arrays (columnar FleetTick mirror)."""
    return (
        ShmArraySpec("ticks_in", (n_streams, features), "<f8"),
        ShmArraySpec("predictions", (n_streams,), "<f8"),
        ShmArraySpec("actuals", (n_streams,), "<f8"),
        ShmArraySpec("errors", (n_streams,), "<f8"),
        ShmArraySpec("drift", (n_streams,), "|b1"),
        ShmArraySpec("health", (n_streams,), "|u1"),
        ShmArraySpec("gated", (n_streams,), "|i1"),
        ShmArraySpec("refit", (shards,), "|u1"),
    )


def _shard_worker(
    conn: Any,
    shm_name: str,
    specs: tuple[ShmArraySpec, ...],
    shard_index: int,
    lo: int,
    hi: int,
    fleet_kwargs: dict[str, Any],
) -> None:
    """Worker loop: one persistent process serving streams ``[lo, hi)``.

    Runs in a spawned child with a clean interpreter. All per-tick data
    moves through the attached shm block; the pipe carries only control
    tokens and the rare state/metrics payloads.
    """
    try:
        block = ShmBlock.attach(specs, shm_name)
        predictor = FleetPredictor(hi - lo, **fleet_kwargs)
        # swap the private history ring for this shard's row-slice of the
        # fleet-wide shared ring: same semantics, zero-copy parent reads
        predictor.buffer = SharedMatrixRingBuffer.from_arrays(
            block["ring_data"][lo:hi], block["ring_head"][lo:hi], block["ring_size"][lo:hi]
        )
        conn.send(("ready", lo, hi))
    except Exception as exc:  # noqa: BLE001 — startup failure must reach the parent
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}", _traceback.format_exc()))
        finally:
            conn.close()
        return

    from ..obs.registry import default_registry

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        cmd = msg[0]
        try:
            if cmd == "tick":
                tick = np.array(block["ticks_in"][lo:hi])
                result = predictor.process_tick(tick)
                block["predictions"][lo:hi] = result.predictions
                block["actuals"][lo:hi] = result.actuals
                block["errors"][lo:hi] = result.errors
                block["drift"][lo:hi] = result.drift
                block["health"][lo:hi] = result.health
                block["gated"][lo:hi] = result.gated
                block["refit"][shard_index] = result.refit
                conn.send(("ok",))
            elif cmd == "state":
                conn.send(("state", predictor.state_dict()))
            elif cmd == "load":
                predictor.load_state_dict(msg[1])
                conn.send(("ok",))
            elif cmd == "stats":
                st = predictor.stats
                conn.send(
                    (
                        "stats",
                        {
                            "streams": hi - lo,
                            "n_predictions": int(st.n_predictions.sum()),
                            "sum_abs_error": float(st.sum_abs_error.sum()),
                            "n_refits": int(st.n_refits),
                            "n_refit_failures": int(st.n_refit_failures),
                            "n_drifts": int(st.n_drifts.sum()),
                            "n_quarantined": int(predictor.gate.n_quarantined.sum()),
                            "health": predictor.health.name,
                        },
                    )
                )
            elif cmd == "metrics":
                tracer = obs_trace.default_tracer()
                conn.send(
                    (
                        "metrics",
                        default_registry().snapshot()["series"],
                        [s.to_dict() for s in tracer.finished],
                    )
                )
                tracer.clear()
            elif cmd == "stop":
                conn.send(("ok",))
                break
            else:
                conn.send(("error", f"unknown command {cmd!r}", ""))
        except Exception as exc:  # noqa: BLE001 — report, stay alive; parent decides
            try:
                conn.send(("error", f"{type(exc).__name__}: {exc}", _traceback.format_exc()))
            except (BrokenPipeError, OSError):
                break
    conn.close()


class _ShardHandle:
    """Coordinator-side record of one worker: process, pipe, stream slice."""

    __slots__ = ("index", "lo", "hi", "proc", "conn", "alive")

    def __init__(self, index: int, lo: int, hi: int, proc: Any, conn: Any) -> None:
        self.index = index
        self.lo = lo
        self.hi = hi
        self.proc = proc
        self.conn = conn
        self.alive = True


class ShardedFleetPredictor:
    """Drive N streams through ``shards`` persistent FleetPredictor workers.

    Parameters
    ----------
    n_streams:
        Total streams in the fleet; each tick is ``(n_streams, features)``
        (or ``(n_streams,)`` univariate).
    shards:
        Worker process count; streams partition contiguously and evenly
        (:func:`shard_boundaries`). ``shards=1`` is bit-identical to a
        single-process :class:`FleetPredictor`.
    tick_timeout:
        Seconds the coordinator waits for a worker's tick token before
        declaring the shard failed (``None`` blocks until the pipe
        closes — a killed worker still fails fast via EOF).
    registry:
        Parent-side :class:`~repro.obs.MetricRegistry` for coordinator
        instruments and the worker metric merge at :meth:`close`.
    fleet_kwargs:
        Every remaining keyword is forwarded verbatim to each worker's
        :class:`FleetPredictor` (``window``, ``refit_interval``,
        ``gate_policy``, ...). They must be picklable (they cross the
        spawn boundary once, at start-up); ``refit_fault_hook`` is
        rejected — a live callable cannot cross process boundaries.
    """

    def __init__(
        self,
        n_streams: int,
        shards: int = 2,
        *,
        tick_timeout: float | None = None,
        registry: MetricRegistry | None = None,
        **fleet_kwargs: Any,
    ) -> None:
        if n_streams < 1:
            raise ValueError(f"n_streams must be >= 1, got {n_streams}")
        for forbidden in ("n_streams", "registry", "refit_fault_hook"):
            if forbidden in fleet_kwargs:
                raise ValueError(
                    f"{forbidden!r} cannot be passed through to shard workers"
                )
        self.n_streams = n_streams
        self.shards = shards
        self.boundaries = shard_boundaries(n_streams, shards)
        self.tick_timeout = tick_timeout
        self.fleet_kwargs = dict(fleet_kwargs)
        cfg = {**_FLEET_DEFAULTS, **self.fleet_kwargs}
        self.features = int(cfg["features"])
        self.target_col = int(cfg["target_col"])
        self.window = int(cfg["window"])
        self.buffer_capacity = int(cfg["buffer_capacity"])
        self.forecaster_name = str(cfg["forecaster_name"])

        self._registry = get_registry(registry)
        self._h_latency = MetricHistogram(
            "serving_shard_tick_seconds",
            "per-tick sharded-fleet latency (fan-out + shards + fan-in)",
            buckets=log_buckets(1e-6, 10.0),
        )
        self._g_throughput = MetricGauge(
            "serving_shard_records_per_sec", "instantaneous sharded-fleet throughput"
        )
        self._c_ticks = MetricCounter(
            "serving_shard_ticks_total", "fleet ticks driven through the shard pool"
        )
        self._c_failures = MetricCounter(
            "serving_shard_worker_failures_total",
            "shard workers declared dead by the coordinator",
        )
        for inst in (self._h_latency, self._g_throughput, self._c_ticks, self._c_failures):
            self._registry.register(inst)

        self._step = 0
        self._closed = False
        self.worker_failures = 0
        self.errors: list[str] = []

        specs = _tick_specs(n_streams, self.features, shards) + ring_specs(
            n_streams, self.buffer_capacity, self.features
        )
        self._specs = specs
        self._block = ShmBlock.create(specs)
        self._block["ticks_in"][...] = np.nan
        self._ring: SharedMatrixRingBuffer | None = SharedMatrixRingBuffer.from_arrays(
            self._block["ring_data"], self._block["ring_head"], self._block["ring_size"]
        )

        ctx = get_context("spawn")
        self._handles: list[_ShardHandle] = []
        try:
            for i in range(shards):
                lo, hi = self.boundaries[i], self.boundaries[i + 1]
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                proc = ctx.Process(
                    target=_shard_worker,
                    args=(child_conn, self._block.name, specs, i, lo, hi, self.fleet_kwargs),
                    daemon=True,
                    name=f"fleet-shard-{i}",
                )
                proc.start()
                child_conn.close()
                self._handles.append(_ShardHandle(i, lo, hi, proc, parent_conn))
            for h in self._handles:
                reply = h.conn.recv()
                if reply[0] != "ready":
                    raise RuntimeError(
                        f"shard {h.index} failed to start: {reply[1]}\n{reply[2]}"
                    )
        except Exception:
            self.close(collect_metrics=False)
            raise

    # -- lifecycle --------------------------------------------------------------

    def __enter__(self) -> "ShardedFleetPredictor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover — GC safety net
        try:
            self.close(collect_metrics=False)
        except Exception:  # noqa: BLE001
            pass

    @property
    def failed_shards(self) -> tuple[int, ...]:
        """Indices of shards whose worker has been declared dead."""
        return tuple(h.index for h in self._handles if not h.alive)

    def _mark_failed(self, handle: _ShardHandle, reason: str) -> None:
        if not handle.alive:
            return
        handle.alive = False
        self.worker_failures += 1
        self._c_failures.inc()
        msg = f"shard {handle.index} (streams [{handle.lo}, {handle.hi})) failed: {reason}"
        self.errors.append(msg)
        if len(self.errors) > 64:
            del self.errors[:-64]
        try:
            handle.conn.close()
        except OSError:  # pragma: no cover
            pass
        if handle.proc.is_alive():
            handle.proc.terminate()
        handle.proc.join(timeout=5.0)

    def _live(self) -> list[_ShardHandle]:
        if self._closed:
            raise RuntimeError("ShardedFleetPredictor is closed")
        return [h for h in self._handles if h.alive]

    # -- serving ----------------------------------------------------------------

    def process_tick(self, tick: np.ndarray) -> FleetTick:
        """One fleet step across every live shard; dead shards yield NaN rows."""
        live = self._live()
        arr = np.asarray(tick, float)
        if arr.ndim == 1 and self.features == 1:
            arr = arr[:, None]
        if arr.shape != (self.n_streams, self.features):
            raise ValueError(
                f"expected tick of shape ({self.n_streams}, {self.features}), "
                f"got {arr.shape}"
            )
        t0 = time.perf_counter()
        block = self._block
        block["ticks_in"][...] = arr
        block["refit"][...] = 0

        dispatched: list[_ShardHandle] = []
        for h in live:
            try:
                h.conn.send(("tick",))
                dispatched.append(h)
            except (BrokenPipeError, OSError) as exc:
                self._mark_failed(h, f"pipe closed on dispatch ({exc})")
        for h in dispatched:
            try:
                if self.tick_timeout is not None and not h.conn.poll(self.tick_timeout):
                    raise TimeoutError(f"no tick reply within {self.tick_timeout}s")
                reply = h.conn.recv()
                if reply[0] != "ok":
                    raise RuntimeError(f"tick errored in worker: {reply[1]}")
            except (EOFError, OSError, TimeoutError, RuntimeError) as exc:
                self._mark_failed(h, str(exc))

        predictions = np.array(block["predictions"])
        actuals = np.array(block["actuals"])
        errors = np.array(block["errors"])
        drift = np.array(block["drift"])
        health = np.array(block["health"])
        gated = np.array(block["gated"])
        refit = False
        for h in self._handles:
            if h.alive:
                refit = refit or bool(block["refit"][h.index])
            else:
                sl = slice(h.lo, h.hi)
                predictions[sl] = np.nan
                errors[sl] = np.nan
                actuals[sl] = arr[sl, self.target_col]
                drift[sl] = False
                health[sl] = _DEAD_HEALTH
                gated[sl] = _DEAD_GATED

        self._step += 1
        if is_enabled():
            elapsed = time.perf_counter() - t0
            self._h_latency.observe(elapsed)
            self._c_ticks.inc()
            if elapsed > 0:
                self._g_throughput.set(self.n_streams / elapsed)
        return FleetTick(
            step=self._step - 1,
            predictions=predictions,
            actuals=actuals,
            errors=errors,
            refit=refit,
            drift=drift,
            health=health,
            gated=gated,
        )

    def run(self, ticks: np.ndarray) -> list[FleetTick]:
        """Process a ``(T, n_streams[, features])`` tick matrix sequentially."""
        ticks = np.asarray(ticks, float)
        if ticks.ndim == 2 and self.features == 1:
            ticks = ticks[:, :, None]
        with obs_trace.span("serving.shard_run") as sp:
            out = [self.process_tick(t) for t in ticks]
            sp.add("ticks", len(out))
            sp.add("records", len(out) * self.n_streams)
        return out

    def stream_history(self, stream: int) -> np.ndarray:
        """One stream's buffered records, oldest first — zero-IPC shm read.

        Safe between ticks (the coordinator and the workers alternate on
        the tick protocol, so no worker is writing while this reads).
        """
        if self._ring is None:
            raise RuntimeError("ShardedFleetPredictor is closed")
        if not 0 <= stream < self.n_streams:
            raise IndexError(f"stream must be in [0, {self.n_streams}), got {stream}")
        return self._ring.view(stream)

    # -- introspection -----------------------------------------------------------

    def _request(self, handle: _ShardHandle, command: tuple, expect: str) -> Any:
        """Send one control command and return its payload (or mark failed)."""
        try:
            handle.conn.send(command)
            reply = handle.conn.recv()
        except (BrokenPipeError, EOFError, OSError) as exc:
            self._mark_failed(handle, f"pipe closed during {command[0]!r} ({exc})")
            raise RuntimeError(
                f"shard {handle.index} died during {command[0]!r}"
            ) from exc
        if reply[0] == "error":
            raise RuntimeError(f"shard {handle.index} {command[0]!r} failed: {reply[1]}")
        if reply[0] != expect:
            raise RuntimeError(
                f"shard {handle.index} replied {reply[0]!r} to {command[0]!r}"
            )
        return reply[1] if len(reply) > 1 else None

    def stats(self) -> dict[str, Any]:
        """Fleet-wide serving statistics plus per-shard detail and failures."""
        per_shard: list[dict[str, Any]] = []
        totals = {"n_predictions": 0, "sum_abs_error": 0.0, "n_refits": 0,
                  "n_refit_failures": 0, "n_drifts": 0, "n_quarantined": 0}
        for h in self._handles:
            if not h.alive:
                per_shard.append(
                    {"shard": h.index, "streams": h.hi - h.lo, "ok": False}
                )
                continue
            payload = self._request(h, ("stats",), "stats")
            payload = {"shard": h.index, "ok": True, **payload}
            per_shard.append(payload)
            for key in totals:
                totals[key] += payload[key]
        fleet_mae = totals["sum_abs_error"] / max(totals["n_predictions"], 1)
        return {
            "n_streams": self.n_streams,
            "shards": self.shards,
            "step": self._step,
            "worker_failures": self.worker_failures,
            "failed_shards": list(self.failed_shards),
            "errors": list(self.errors),
            "fleet_mae": fleet_mae,
            **totals,
            "per_shard": per_shard,
        }

    # -- checkpoint / restore ----------------------------------------------------

    def _config_dict(self) -> dict[str, Any]:
        return {
            "n_streams": self.n_streams,
            "shards": self.shards,
            "boundaries": list(self.boundaries),
            "features": self.features,
            "window": self.window,
            "buffer_capacity": self.buffer_capacity,
            "forecaster_name": self.forecaster_name,
            "tick_timeout": self.tick_timeout,
            "fleet_kwargs": dict(self.fleet_kwargs),
        }

    def save(self, path: str | Path) -> None:
        """Compose every shard's state into one crash-safe fleet snapshot.

        Refuses to checkpoint a degraded fleet: a snapshot missing a
        shard could silently restore a smaller fleet.
        """
        if self.failed_shards:
            raise RuntimeError(
                f"cannot checkpoint with failed shards {list(self.failed_shards)}"
            )
        shard_states = [self._request(h, ("state",), "state") for h in self._live()]
        write_checkpoint(
            path,
            {
                "kind": "sharded_fleet_predictor",
                "state": {
                    "config": self._config_dict(),
                    "step": self._step,
                    "shard_states": shard_states,
                },
            },
        )

    def load_state(self, state: dict[str, Any]) -> None:
        """Adopt a composed snapshot; every shard must match its saved config."""
        cfg = state["config"]
        if (
            cfg["n_streams"] != self.n_streams
            or cfg["shards"] != self.shards
            or list(cfg["boundaries"]) != list(self.boundaries)
            or cfg["features"] != self.features
            or cfg["window"] != self.window
            or cfg["buffer_capacity"] != self.buffer_capacity
            or cfg["forecaster_name"] != self.forecaster_name
        ):
            raise CheckpointError(
                "sharded checkpoint config mismatch: saved "
                f"(streams={cfg['n_streams']}, shards={cfg['shards']}, "
                f"forecaster={cfg['forecaster_name']}, window={cfg['window']}, "
                f"features={cfg['features']}, capacity={cfg['buffer_capacity']}) vs live "
                f"(streams={self.n_streams}, shards={self.shards}, "
                f"forecaster={self.forecaster_name}, window={self.window}, "
                f"features={self.features}, capacity={self.buffer_capacity})"
            )
        shard_states = state["shard_states"]
        if len(shard_states) != self.shards:
            raise CheckpointError(
                f"snapshot holds {len(shard_states)} shard states, need {self.shards}"
            )
        for h, shard_state in zip(self._live(), shard_states):
            try:
                self._request(h, ("load", shard_state), "ok")
            except RuntimeError as exc:
                raise CheckpointError(str(exc)) from exc
        self._step = int(state["step"])

    @classmethod
    def restore(cls, path: str | Path, **overrides: Any) -> "ShardedFleetPredictor":
        """Rebuild the sharded fleet from a composed snapshot and resume."""
        artifact = read_checkpoint(path)
        if not isinstance(artifact, dict) or artifact.get("kind") != "sharded_fleet_predictor":
            raise CheckpointError(
                f"{path} does not hold a ShardedFleetPredictor checkpoint"
            )
        state = artifact["state"]
        cfg = state["config"]
        kwargs: dict[str, Any] = {
            "shards": cfg["shards"],
            "tick_timeout": cfg["tick_timeout"],
            **cfg["fleet_kwargs"],
        }
        kwargs.update(overrides)
        predictor = cls(cfg["n_streams"], **kwargs)
        try:
            predictor.load_state(state)
        except Exception:
            predictor.close(collect_metrics=False)
            raise
        return predictor

    # -- observability merge / shutdown ------------------------------------------

    def _harvest_metrics(self, handle: _ShardHandle) -> None:
        """Adopt one worker's metric series and revive its spans (once)."""
        try:
            handle.conn.send(("metrics",))
            reply = handle.conn.recv()
        except (BrokenPipeError, EOFError, OSError):
            return
        if reply[0] != "metrics":
            return
        _, series, spans = reply
        self._registry.adopt_series(series)
        labeled = []
        for entry in series:
            if entry.get("name") == "serving_fleet_tick_seconds":
                entry = dict(entry)
                entry["labels"] = {
                    **dict(entry.get("labels") or {}),
                    "shard": str(handle.index),
                }
                labeled.append(entry)
        if labeled:
            self._registry.adopt_series(labeled)
        # imported here: experiments.parallel pulls in the experiments package,
        # which imports repro.streaming — a cycle at module-import time
        from ..experiments.parallel import revive_span

        tracer = obs_trace.default_tracer()
        for span_data in spans:
            revive_span(span_data, tracer)

    def close(self, collect_metrics: bool = True) -> None:
        """Stop every worker, merge their metrics, release the shm segment."""
        if self._closed:
            return
        self._closed = True
        for h in getattr(self, "_handles", []):
            if not h.alive:
                continue
            if collect_metrics:
                self._harvest_metrics(h)
            try:
                h.conn.send(("stop",))
                if h.conn.poll(5.0):
                    h.conn.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass
            h.alive = False
            try:
                h.conn.close()
            except OSError:  # pragma: no cover
                pass
            h.proc.join(timeout=5.0)
            if h.proc.is_alive():  # pragma: no cover — hung worker
                h.proc.terminate()
                h.proc.join(timeout=5.0)
        self._ring = None  # drop shm views before the owning block unmaps
        if getattr(self, "_block", None) is not None:
            self._block.close()
            self._block = None
