"""Shared-memory numpy storage for cross-process fleet serving.

The sharded fleet coordinator and its worker processes exchange one tick
of data per step for every stream in the fleet. Pickling that tick over
a pipe costs O(N) serialization both ways on the hottest path in the
system; instead, both sides map the same ``multiprocessing.shared_memory``
segment and the tick travels as two vectorized numpy copies (parent
writes the ``(N, F)`` tick in, workers write the columnar
:class:`~repro.streaming.fleet.FleetTick` mirror out). Only tiny
constant-size control tokens cross the pipe per tick.

Two building blocks live here:

* :class:`ShmBlock` — one shared segment carved into named, dtype-typed
  numpy arrays from a declarative list of :class:`ShmArraySpec`. The
  creating process owns the segment (and unlinks it); attaching
  processes get views over the same pages.
* :class:`SlottedShmBlock` — an :class:`ShmBlock` whose per-tick arrays
  exist in ``slots`` independent banks keyed by ``step % slots``, so a
  tick pipeline can write tick *t+1* into one bank while readers still
  consume tick *t* from the other. Bank arrays never alias (each bank
  copy is its own aligned extent in the segment layout — property-tested
  in ``tests/streaming/test_shm_buffer.py``); ``shared`` specs opt out
  of slotting for state that must be one copy (e.g. the history ring).
* :class:`SharedMatrixRingBuffer` — a
  :class:`~repro.streaming.buffer.MatrixRingBuffer` whose storage
  (data + per-stream heads and sizes) lives in an :class:`ShmBlock`, so
  a worker's stream histories are readable zero-copy from the
  coordinator (e.g. for snapshot composition or history inspection)
  while remaining element-for-element identical in behaviour to the
  private in-process ring (property-tested in
  ``tests/streaming/test_shm_buffer.py``).

Ownership protocol: exactly one process *creates* a block (and its
``close()`` also unlinks the segment); every other process *attaches*
and only ever drops its own mapping. Attachers must be spawned children
of the creator so that they share its resource-tracker process — then a
dying (even ``SIGKILL``\\ ed) worker cannot destroy a segment the rest
of the fleet is still using. The segment therefore outlives any worker:
a *respawned* shard worker simply re-attaches to the same block by name
and inherits its predecessor's row-slice, including the ring cursors —
which is why a cold-started replacement must
:meth:`~repro.streaming.buffer.MatrixRingBuffer.clear` its slice before
serving, while a checkpoint-restored one overwrites it in place.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from .buffer import MatrixRingBuffer

__all__ = [
    "ShmArraySpec",
    "ShmBlock",
    "SlottedShmBlock",
    "SharedMatrixRingBuffer",
    "ring_specs",
    "slotted_specs",
]

#: every array in a block starts on a 64-byte boundary (cache-line size)
_ALIGN = 64


@dataclass(frozen=True)
class ShmArraySpec:
    """One named array inside a shared block."""

    name: str
    shape: tuple[int, ...]
    dtype: str  #: numpy dtype string (``"<f8"``, ``"|b1"``, ...)

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


def _layout(specs: tuple[ShmArraySpec, ...]) -> tuple[dict[str, int], int]:
    """Aligned byte offsets per array and the total segment size."""
    offsets: dict[str, int] = {}
    cursor = 0
    for spec in specs:
        if spec.name in offsets:
            raise ValueError(f"duplicate array name {spec.name!r} in shm layout")
        offsets[spec.name] = cursor
        cursor += -(-spec.nbytes // _ALIGN) * _ALIGN
    return offsets, max(cursor, 1)


class ShmBlock:
    """A shared-memory segment presented as named numpy arrays.

    Build one with :meth:`create` (owner side) or :meth:`attach` (worker
    side, given the owner's ``specs`` and segment ``name``); index it
    like a mapping: ``block["predictions"]`` is a live numpy view.
    """

    def __init__(
        self, specs: tuple[ShmArraySpec, ...], shm: shared_memory.SharedMemory, owner: bool
    ) -> None:
        self.specs = tuple(specs)
        self._shm = shm
        self._owner = owner
        self._closed = False
        offsets, _ = _layout(self.specs)
        self._arrays = {
            spec.name: np.ndarray(
                spec.shape, dtype=spec.dtype, buffer=shm.buf, offset=offsets[spec.name]
            )
            for spec in self.specs
        }

    @classmethod
    def create(cls, specs: tuple[ShmArraySpec, ...] | list[ShmArraySpec]) -> "ShmBlock":
        """Allocate a fresh zero-initialized segment sized for ``specs``."""
        specs = tuple(specs)
        _, size = _layout(specs)
        shm = shared_memory.SharedMemory(create=True, size=size)
        block = cls(specs, shm, owner=True)
        for arr in block._arrays.values():
            arr[...] = np.zeros((), dtype=arr.dtype)
        return block

    @classmethod
    def attach(
        cls, specs: tuple[ShmArraySpec, ...] | list[ShmArraySpec], name: str
    ) -> "ShmBlock":
        """Map an existing segment by name (non-owning).

        Attachers are expected to be ``multiprocessing``-spawned children
        of the creator, which share the creator's resource-tracker
        process: the duplicate registration on attach is a no-op there,
        and a killed worker cannot tear the segment down (the tracker
        only reaps at tracker shutdown, after the owner's unlink).
        """
        shm = shared_memory.SharedMemory(name=name)
        return cls(tuple(specs), shm, owner=False)

    @property
    def name(self) -> str:
        """The OS-level segment name attachers need."""
        return self._shm.name

    @property
    def owner(self) -> bool:
        return self._owner

    def __getitem__(self, field: str) -> np.ndarray:
        return self._arrays[field]

    def __contains__(self, field: str) -> bool:
        return field in self._arrays

    def close(self) -> None:
        """Drop this process's mapping; the owner also destroys the segment."""
        if self._closed:
            return
        self._closed = True
        self._arrays.clear()  # views must die before the buffer unmaps
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover — a leaked view pins the mapping
            return
        if self._owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover — already gone
                pass

    def __del__(self) -> None:  # pragma: no cover — GC safety net
        try:
            self.close()
        except Exception:  # noqa: BLE001
            pass


def slotted_specs(
    specs: tuple[ShmArraySpec, ...] | list[ShmArraySpec], slots: int
) -> tuple[ShmArraySpec, ...]:
    """``slots`` independent copies of every spec; bank ``k`` is ``name@k``.

    The copies are distinct entries in the block layout, so every bank
    occupies its own aligned extent — banks can never alias.
    """
    if slots < 1:
        raise ValueError(f"slots must be >= 1, got {slots}")
    return tuple(
        ShmArraySpec(f"{spec.name}@{slot}", spec.shape, spec.dtype)
        for slot in range(slots)
        for spec in specs
    )


class _ShmBank:
    """Read/write view of one bank of a :class:`SlottedShmBlock`."""

    __slots__ = ("_block", "_slot")

    def __init__(self, block: "SlottedShmBlock", slot: int) -> None:
        self._block = block
        self._slot = slot

    @property
    def slot(self) -> int:
        return self._slot

    def __getitem__(self, field: str) -> np.ndarray:
        return self._block.array(field, self._slot)

    def __contains__(self, field: str) -> bool:
        return (field, self._slot) in self._block


class SlottedShmBlock:
    """A shared block whose per-tick arrays exist in ``slots`` banks.

    A two-deep tick pipeline writes tick *t+1* into ``bank(t + 1)``
    while workers still compute (and readers still harvest) tick *t*
    from ``bank(t)`` — with ``slots=2`` consecutive steps land in
    disjoint banks by construction. ``shared`` specs are carved into the
    same segment *unslotted* for state that must be a single copy (the
    fleet history ring); address those through :meth:`__getitem__` with
    a bare name.

    Ownership follows :class:`ShmBlock`: one creator (who unlinks on
    close), any number of spawned attachers.
    """

    def __init__(
        self,
        specs: tuple[ShmArraySpec, ...],
        shared: tuple[ShmArraySpec, ...],
        slots: int,
        block: ShmBlock,
    ) -> None:
        self.specs = tuple(specs)
        self.shared = tuple(shared)
        self.slots = int(slots)
        self._block = block

    @staticmethod
    def _layout_specs(
        specs: tuple[ShmArraySpec, ...] | list[ShmArraySpec],
        shared: tuple[ShmArraySpec, ...] | list[ShmArraySpec],
        slots: int,
    ) -> tuple[ShmArraySpec, ...]:
        return slotted_specs(specs, slots) + tuple(shared)

    @classmethod
    def create(
        cls,
        specs: tuple[ShmArraySpec, ...] | list[ShmArraySpec],
        slots: int = 2,
        shared: tuple[ShmArraySpec, ...] | list[ShmArraySpec] = (),
    ) -> "SlottedShmBlock":
        """Allocate one owning segment holding every bank plus ``shared``."""
        block = ShmBlock.create(cls._layout_specs(specs, shared, slots))
        return cls(tuple(specs), tuple(shared), slots, block)

    @classmethod
    def attach(
        cls,
        specs: tuple[ShmArraySpec, ...] | list[ShmArraySpec],
        slots: int,
        name: str,
        shared: tuple[ShmArraySpec, ...] | list[ShmArraySpec] = (),
    ) -> "SlottedShmBlock":
        """Map a creator's slotted segment by name (non-owning)."""
        block = ShmBlock.attach(cls._layout_specs(specs, shared, slots), name)
        return cls(tuple(specs), tuple(shared), slots, block)

    @property
    def name(self) -> str:
        return self._block.name

    @property
    def owner(self) -> bool:
        return self._block.owner

    def bank(self, step: int) -> _ShmBank:
        """The bank serving fleet step ``step`` (keyed by ``step % slots``)."""
        return _ShmBank(self, step % self.slots)

    def array(self, field: str, slot: int) -> np.ndarray:
        """One slotted array by base name and bank index."""
        if not 0 <= slot < self.slots:
            raise IndexError(f"slot must be in [0, {self.slots}), got {slot}")
        return self._block[f"{field}@{slot}"]

    def __getitem__(self, key: str | tuple[str, int]) -> np.ndarray:
        """``block[name]`` for shared arrays, ``block[name, slot]`` for banks."""
        if isinstance(key, tuple):
            return self.array(*key)
        return self._block[key]

    def __contains__(self, key: str | tuple[str, int]) -> bool:
        if isinstance(key, tuple):
            field, slot = key
            return 0 <= slot < self.slots and f"{field}@{slot}" in self._block
        return key in self._block

    def close(self) -> None:
        self._block.close()

    def __del__(self) -> None:  # pragma: no cover — GC safety net
        try:
            self.close()
        except Exception:  # noqa: BLE001
            pass


def ring_specs(streams: int, capacity: int, features: int, prefix: str = "ring") -> tuple[
    ShmArraySpec, ShmArraySpec, ShmArraySpec
]:
    """The three arrays a :class:`SharedMatrixRingBuffer` needs in a block."""
    return (
        ShmArraySpec(f"{prefix}_data", (streams, capacity, features), "<f8"),
        ShmArraySpec(f"{prefix}_head", (streams,), "<i8"),
        ShmArraySpec(f"{prefix}_size", (streams,), "<i8"),
    )


class SharedMatrixRingBuffer(MatrixRingBuffer):
    """A :class:`MatrixRingBuffer` whose storage lives in shared memory.

    Behaviourally identical to the private ring — every method is
    inherited and every mutation is an in-place write, so two processes
    mapping the same block observe the same ring state. Construct with
    :meth:`create` (allocates a dedicated owning block), :meth:`attach`
    (maps a creator's block), or :meth:`from_arrays` (views carved out
    of a caller-managed block, e.g. one shard's row-slice of the fleet
    ring).

    Concurrency contract: the ring itself is not locked. The sharded
    fleet's tick protocol provides the synchronization — workers only
    write while the coordinator is waiting for their tick token, and the
    coordinator only reads between ticks.
    """

    def __init__(self, streams: int, capacity: int, features: int) -> None:
        # validate via the parent, then discard its private allocation if
        # a factory re-points storage afterwards (create/attach/from_arrays)
        super().__init__(streams, capacity, features)
        self._block: ShmBlock | None = None

    def _adopt(self, data: np.ndarray, head: np.ndarray, size: np.ndarray) -> None:
        if data.shape != (self.streams, self.capacity, self.features):
            raise ValueError(
                f"storage shape {data.shape} does not match ring "
                f"({self.streams}, {self.capacity}, {self.features})"
            )
        self._data = data
        self._head = head
        self._size = size

    @classmethod
    def create(cls, streams: int, capacity: int, features: int) -> "SharedMatrixRingBuffer":
        """Allocate an owning shared block and build the ring over it."""
        ring = cls(streams, capacity, features)
        block = ShmBlock.create(ring_specs(streams, capacity, features))
        ring._adopt(block["ring_data"], block["ring_head"], block["ring_size"])
        ring._block = block
        return ring

    @classmethod
    def attach(
        cls, streams: int, capacity: int, features: int, name: str
    ) -> "SharedMatrixRingBuffer":
        """Map a creator's ring by segment name (non-owning)."""
        ring = cls(streams, capacity, features)
        block = ShmBlock.attach(ring_specs(streams, capacity, features), name)
        ring._adopt(block["ring_data"], block["ring_head"], block["ring_size"])
        ring._block = block
        return ring

    @classmethod
    def from_arrays(
        cls, data: np.ndarray, head: np.ndarray, size: np.ndarray
    ) -> "SharedMatrixRingBuffer":
        """Build a ring over caller-owned storage (e.g. a shard's row-slice).

        ``data`` must be ``(streams, capacity, features)``; ``head`` and
        ``size`` are the matching ``(streams,)`` int64 cursors. The
        caller keeps ownership of the backing block's lifetime.
        """
        streams, capacity, features = data.shape
        ring = cls(streams, capacity, features)
        ring._adopt(data, np.asarray(head), np.asarray(size))
        return ring

    @property
    def shm_name(self) -> str:
        """Segment name for :meth:`attach`; raises if not block-backed."""
        if self._block is None:
            raise ValueError("this ring is not backed by its own shm block")
        return self._block.name

    def close(self) -> None:
        """Release the backing block mapping (owner also unlinks).

        The ring's storage is re-pointed at private (empty) arrays first
        — numpy views pin the shared mapping, and ``mmap`` refuses to
        unmap while exported buffers exist.
        """
        if self._block is not None:
            self._adopt(
                np.empty((self.streams, self.capacity, self.features)),
                np.zeros(self.streams, dtype=np.int64),
                np.zeros(self.streams, dtype=np.int64),
            )
            self._block.close()
            self._block = None
