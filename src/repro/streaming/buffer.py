"""Fixed-capacity ring buffers over multivariate monitoring records.

:class:`RollingBuffer` holds one stream's history; :class:`MatrixRingBuffer`
holds a whole fleet of independent ring buffers in a single
``(streams, capacity, features)`` array so that a tick's worth of
records — one per stream — appends in O(1) vectorized work, and the
most recent windows of many streams gather into one ``(B, window,
features)`` batch for a micro-batched model forward.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RollingBuffer", "MatrixRingBuffer"]


class RollingBuffer:
    """Ring buffer of ``(features,)`` records with O(1) append.

    Backed by a preallocated ``(capacity, features)`` array; ``view()``
    materializes the chronologically ordered contents (one copy — the
    price of presenting a contiguous array to the window builders).
    """

    def __init__(self, capacity: int, features: int) -> None:
        if capacity < 1 or features < 1:
            raise ValueError(f"capacity and features must be >= 1, got {capacity}, {features}")
        self.capacity = capacity
        self.features = features
        self._data = np.empty((capacity, features))
        self._head = 0  # next write position
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def full(self) -> bool:
        return self._size == self.capacity

    def append(self, record: np.ndarray) -> None:
        record = np.asarray(record, float)
        if record.shape != (self.features,):
            raise ValueError(f"expected shape ({self.features},), got {record.shape}")
        self._data[self._head] = record
        self._head = (self._head + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def extend(self, records: np.ndarray) -> None:
        """Append ``(k, features)`` rows with at most two slice copies.

        Exactly equivalent to appending each row in order: only the last
        ``capacity`` rows can survive, so everything earlier is skipped
        outright and the survivors land in their final ring positions.
        """
        records = np.asarray(records, float)
        if records.size == 0 and records.ndim <= 2:
            return
        if records.ndim != 2 or records.shape[1] != self.features:
            raise ValueError(f"expected shape (k, {self.features}), got {records.shape}")
        k = len(records)
        m = min(k, self.capacity)  # rows that actually survive
        rows = records[k - m :]
        start = (self._head + (k - m)) % self.capacity
        first = min(m, self.capacity - start)
        self._data[start : start + first] = rows[:first]
        if first < m:
            self._data[: m - first] = rows[first:]
        self._head = (self._head + k) % self.capacity
        self._size = min(self._size + k, self.capacity)

    def view(self) -> np.ndarray:
        """Chronologically ordered contents, oldest first (copy)."""
        if self._size < self.capacity:
            return self._data[: self._size].copy()
        return np.roll(self._data, -self._head, axis=0).copy()

    def last(self, n: int) -> np.ndarray:
        """The most recent ``n`` records, oldest first."""
        out = np.empty((n, self.features))
        self.last_into(out)
        return out

    def last_into(self, out: np.ndarray) -> np.ndarray:
        """Copy the most recent ``len(out)`` records into ``out``, oldest first.

        Serving fast path: unlike :meth:`last` via :meth:`view`, this never
        materializes (or rolls) the whole buffer — at most two slice copies
        of exactly ``n`` rows land in the caller-owned output array.
        """
        n = len(out)
        if n < 1 or n > self._size:
            raise ValueError(f"n must be in [1, {self._size}], got {n}")
        if self._size < self.capacity:
            out[...] = self._data[self._size - n : self._size]
            return out
        start = (self._head - n) % self.capacity
        if start + n <= self.capacity:
            out[...] = self._data[start : start + n]
        else:
            split = self.capacity - start
            out[:split] = self._data[start:]
            out[split:] = self._data[: n - split]
        return out

    def clear(self) -> None:
        self._head = 0
        self._size = 0

    # -- checkpointing ---------------------------------------------------------

    def state_dict(self) -> dict:
        """Raw ring state (data + head + size) for exact checkpoint/restore."""
        return {
            "capacity": self.capacity,
            "features": self.features,
            "data": self._data.copy(),
            "head": self._head,
            "size": self._size,
        }

    def load_state_dict(self, state: dict) -> None:
        if state["capacity"] != self.capacity or state["features"] != self.features:
            raise ValueError(
                f"buffer shape mismatch: have ({self.capacity}, {self.features}), "
                f"checkpoint holds ({state['capacity']}, {state['features']})"
            )
        self._data[...] = state["data"]
        self._head = int(state["head"])
        self._size = int(state["size"])


class MatrixRingBuffer:
    """A fleet of independent ring buffers in one preallocated array.

    Semantically ``streams`` :class:`RollingBuffer` instances — each
    stream has its own head and size, because quarantined records never
    enter a stream's history and streams may join mid-flight — but the
    storage is one ``(streams, capacity, features)`` block, so the two
    serving hot paths are single vectorized operations:

    * :meth:`append_tick` writes one record per (masked) stream via a
      fancy-indexed assignment;
    * :meth:`last_windows` gathers the most recent ``window`` records of
      any subset of streams into a ``(B, window, features)`` batch with
      one gather, ready for a micro-batched model forward.
    """

    def __init__(self, streams: int, capacity: int, features: int) -> None:
        if streams < 1 or capacity < 1 or features < 1:
            raise ValueError(
                f"streams, capacity and features must be >= 1, "
                f"got {streams}, {capacity}, {features}"
            )
        self.streams = streams
        self.capacity = capacity
        self.features = features
        self._data = np.empty((streams, capacity, features))
        self._head = np.zeros(streams, dtype=np.int64)  # next write position
        self._size = np.zeros(streams, dtype=np.int64)

    @property
    def sizes(self) -> np.ndarray:
        """Per-stream fill levels (read-only view)."""
        out = self._size.view()
        out.flags.writeable = False
        return out

    def __len__(self) -> int:
        """Total records held across all streams."""
        return int(self._size.sum())

    def append_tick(self, records: np.ndarray, mask: np.ndarray | None = None) -> None:
        """Append one record per stream; ``mask`` selects which streams absorb."""
        records = np.asarray(records, float)
        if records.shape != (self.streams, self.features):
            raise ValueError(
                f"expected shape ({self.streams}, {self.features}), got {records.shape}"
            )
        if mask is None:
            idx = np.arange(self.streams)
        else:
            mask = np.asarray(mask, bool)
            if mask.shape != (self.streams,):
                raise ValueError(f"mask must have shape ({self.streams},), got {mask.shape}")
            idx = np.flatnonzero(mask)
            if idx.size == 0:
                return
        heads = self._head[idx]
        self._data[idx, heads] = records[idx]
        self._head[idx] = (heads + 1) % self.capacity
        self._size[idx] = np.minimum(self._size[idx] + 1, self.capacity)

    def last_windows(
        self, idx: np.ndarray, window: int, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Gather the most recent ``window`` records of streams ``idx``.

        Returns ``(len(idx), window, features)``, oldest first within
        each window — the fleet equivalent of
        :meth:`RollingBuffer.last_into` for a whole batch at once.
        ``out`` (any float dtype) receives the gather when given.
        """
        idx = np.asarray(idx, dtype=np.int64)
        if window < 1 or np.any(self._size[idx] < window):
            raise ValueError(f"every requested stream needs >= {window} records")
        starts = (self._head[idx] - window) % self.capacity
        cols = (starts[:, None] + np.arange(window)) % self.capacity
        gathered = self._data[idx[:, None], cols]
        if out is None:
            return gathered
        out[...] = gathered
        return out

    def view(self, stream: int) -> np.ndarray:
        """Chronologically ordered contents of one stream, oldest first (copy)."""
        size = int(self._size[stream])
        head = int(self._head[stream])
        if size < self.capacity:
            return self._data[stream, :size].copy()
        return np.roll(self._data[stream], -head, axis=0).copy()

    def filled_matrix(self) -> np.ndarray:
        """The raw ring with never-written slots masked to NaN (copy).

        Rows are **not** chronologically ordered — this is for
        order-insensitive reductions (quantiles, means) over every
        stream's retained history in one vectorized pass. A stream that
        has not wrapped has written exactly slots ``[0, size)``; a
        wrapped stream has written all of them.
        """
        out = self._data.copy()
        out[np.arange(self.capacity)[None, :] >= self._size[:, None]] = np.nan
        return out

    def clear(self) -> None:
        self._head[:] = 0
        self._size[:] = 0

    # -- checkpointing ---------------------------------------------------------

    def state_dict(self) -> dict:
        """Raw ring state (data + heads + sizes) for exact checkpoint/restore."""
        return {
            "streams": self.streams,
            "capacity": self.capacity,
            "features": self.features,
            "data": self._data.copy(),
            "head": self._head.copy(),
            "size": self._size.copy(),
        }

    def load_state_dict(self, state: dict) -> None:
        shape = (state["streams"], state["capacity"], state["features"])
        if shape != (self.streams, self.capacity, self.features):
            raise ValueError(
                f"buffer shape mismatch: have ({self.streams}, {self.capacity}, "
                f"{self.features}), checkpoint holds {shape}"
            )
        self._data[...] = state["data"]
        self._head[...] = state["head"]
        self._size[...] = state["size"]
