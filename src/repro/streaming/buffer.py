"""Fixed-capacity ring buffer over multivariate monitoring records."""

from __future__ import annotations

import numpy as np

__all__ = ["RollingBuffer"]


class RollingBuffer:
    """Ring buffer of ``(features,)`` records with O(1) append.

    Backed by a preallocated ``(capacity, features)`` array; ``view()``
    materializes the chronologically ordered contents (one copy — the
    price of presenting a contiguous array to the window builders).
    """

    def __init__(self, capacity: int, features: int) -> None:
        if capacity < 1 or features < 1:
            raise ValueError(f"capacity and features must be >= 1, got {capacity}, {features}")
        self.capacity = capacity
        self.features = features
        self._data = np.empty((capacity, features))
        self._head = 0  # next write position
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def full(self) -> bool:
        return self._size == self.capacity

    def append(self, record: np.ndarray) -> None:
        record = np.asarray(record, float)
        if record.shape != (self.features,):
            raise ValueError(f"expected shape ({self.features},), got {record.shape}")
        self._data[self._head] = record
        self._head = (self._head + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def extend(self, records: np.ndarray) -> None:
        for row in np.asarray(records, float):
            self.append(row)

    def view(self) -> np.ndarray:
        """Chronologically ordered contents, oldest first (copy)."""
        if self._size < self.capacity:
            return self._data[: self._size].copy()
        return np.roll(self._data, -self._head, axis=0).copy()

    def last(self, n: int) -> np.ndarray:
        """The most recent ``n`` records, oldest first."""
        out = np.empty((n, self.features))
        self.last_into(out)
        return out

    def last_into(self, out: np.ndarray) -> np.ndarray:
        """Copy the most recent ``len(out)`` records into ``out``, oldest first.

        Serving fast path: unlike :meth:`last` via :meth:`view`, this never
        materializes (or rolls) the whole buffer — at most two slice copies
        of exactly ``n`` rows land in the caller-owned output array.
        """
        n = len(out)
        if n < 1 or n > self._size:
            raise ValueError(f"n must be in [1, {self._size}], got {n}")
        if self._size < self.capacity:
            out[...] = self._data[self._size - n : self._size]
            return out
        start = (self._head - n) % self.capacity
        if start + n <= self.capacity:
            out[...] = self._data[start : start + n]
        else:
            split = self.capacity - start
            out[:split] = self._data[start:]
            out[split:] = self._data[: n - split]
        return out

    def clear(self) -> None:
        self._head = 0
        self._size = 0

    # -- checkpointing ---------------------------------------------------------

    def state_dict(self) -> dict:
        """Raw ring state (data + head + size) for exact checkpoint/restore."""
        return {
            "capacity": self.capacity,
            "features": self.features,
            "data": self._data.copy(),
            "head": self._head,
            "size": self._size,
        }

    def load_state_dict(self, state: dict) -> None:
        if state["capacity"] != self.capacity or state["features"] != self.features:
            raise ValueError(
                f"buffer shape mismatch: have ({self.capacity}, {self.features}), "
                f"checkpoint holds ({state['capacity']}, {state['features']})"
            )
        self._data[...] = state["data"]
        self._head = int(state["head"])
        self._size = int(state["size"])
