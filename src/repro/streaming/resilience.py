"""Serving resilience: input gating, supervised execution, health states.

The paper's own data is "partially incomplete or has outliers due to
network anomalies, system interruption etc." (§III-A) — and a live
monitoring stream is strictly worse than an archived trace. This module
gives :class:`~repro.streaming.online.OnlinePredictor` the pieces it
needs to survive that reality:

* :class:`InputGate` — validates every incoming record *before* it can
  reach the rolling buffer. Malformed records (wrong arity, all-NaN)
  are quarantined; partially missing or outlying cells are imputed from
  per-feature running statistics. Every decision is counted, so data
  loss is a visible metric instead of silent poison.
* :class:`Supervisor` — runs refits (and predictions) inside a
  try/retry envelope with exponential backoff and a wall-time budget,
  tracking consecutive failures so the predictor knows when to degrade
  to its fallback forecaster.
* :class:`HealthStatus` — the three-state health signal stamped on
  every :class:`~repro.streaming.online.PredictionRecord`.
"""

from __future__ import annotations

import enum
import time
from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, TypeVar

import numpy as np

from ..obs.registry import Counter as MetricCounter
from ..obs.registry import Gauge as MetricGauge
from ..obs.registry import MetricRegistry, get_registry

__all__ = [
    "HealthStatus",
    "GatePolicy",
    "GateResult",
    "InputGate",
    "FleetGate",
    "FleetGateResult",
    "SupervisorPolicy",
    "Supervisor",
]

T = TypeVar("T")


class HealthStatus(str, enum.Enum):
    """Serving health emitted with every prediction record.

    ``HEALTHY``  — the primary forecaster is fitted and serving.
    ``DEGRADED`` — the primary still serves but recent refits or
    predictions failed (the supervisor is retrying).
    ``FALLBACK`` — predictions come from the registered fallback
    forecaster because the primary is unusable.
    ``RECOVERING`` — sharded serving only: the stream's shard worker is
    down but supervised recovery (respawn + checkpoint restore) is in
    progress; rows hold the last served prediction instead of NaN.
    """

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    FALLBACK = "fallback"
    RECOVERING = "recovering"


# ---------------------------------------------------------------------------
# input gate
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GatePolicy:
    """How the input gate treats suspect records.

    Parameters
    ----------
    impute:
        Repair strategy for partially missing records: ``"last"`` fills
        NaN cells with the most recent accepted value for that feature,
        ``"mean"`` with its running mean, ``"drop"`` quarantines any
        record containing a non-finite cell.
    outlier_sigma:
        If set, cells further than ``outlier_sigma`` running standard
        deviations from their feature's running mean are treated per
        ``outlier_action``. ``None`` disables outlier screening.
    outlier_action:
        ``"clamp"`` pulls the offending cell back to the band edge,
        ``"quarantine"`` drops the whole record.
    min_history:
        Accepted records required before outlier screening arms (the
        running moments are meaningless earlier).
    prediction_sigma:
        Output-side guard: served predictions are clamped into
        ``mean ± prediction_sigma * std`` of the gated stream (a model
        extrapolating a corrupted window can forecast far outside any
        value the stream has ever taken). ``None`` disables clamping.
    """

    impute: str = "last"
    outlier_sigma: float | None = None
    outlier_action: str = "clamp"
    min_history: int = 20
    prediction_sigma: float | None = 6.0

    def __post_init__(self) -> None:
        if self.impute not in ("last", "mean", "drop"):
            raise ValueError(f"impute must be 'last', 'mean' or 'drop', got {self.impute!r}")
        if self.outlier_action not in ("clamp", "quarantine"):
            raise ValueError(
                f"outlier_action must be 'clamp' or 'quarantine', got {self.outlier_action!r}"
            )
        if self.outlier_sigma is not None and self.outlier_sigma <= 0:
            raise ValueError(f"outlier_sigma must be positive, got {self.outlier_sigma}")
        if self.prediction_sigma is not None and self.prediction_sigma <= 0:
            raise ValueError(f"prediction_sigma must be positive, got {self.prediction_sigma}")
        if self.min_history < 2:
            raise ValueError(f"min_history must be >= 2, got {self.min_history}")


@dataclass(frozen=True)
class GateResult:
    """Outcome of gating one record.

    ``action`` is ``"accept"``, ``"impute"`` or ``"quarantine"``;
    ``record`` holds the (possibly repaired) record for the first two
    and ``None`` when quarantined; ``reason`` names the defect class
    (``"arity"``, ``"empty"``, ``"missing"``, ``"outlier"``, ...).
    """

    action: str
    record: np.ndarray | None
    reason: str | None = None


class InputGate:
    """Validate, repair or quarantine records before they enter the buffer.

    Keeps per-feature running moments (Welford) over *accepted* data
    only, so corrupt records cannot skew the statistics used to judge
    later ones. Every decision counts into :mod:`repro.obs` instruments
    registered with ``registry`` (default: the process-global registry),
    aggregated across gates in exported snapshots; the historical
    ``n_seen``/``n_accepted``/``n_imputed``/``n_quarantined``/``reasons``
    attributes remain as exact per-instance views. These counts are
    serving state (checkpointed, asserted on), so they record regardless
    of the :func:`repro.obs.set_enabled` switch.
    """

    def __init__(
        self,
        features: int,
        policy: GatePolicy | None = None,
        registry: MetricRegistry | None = None,
    ) -> None:
        if features < 1:
            raise ValueError(f"features must be >= 1, got {features}")
        self.features = features
        self.policy = policy or GatePolicy()
        self._registry = get_registry(registry)
        self._c_seen = MetricCounter(
            "serving_gate_seen_total", "records offered to the input gate"
        )
        self._c_actions = {
            action: MetricCounter(
                "serving_gate_records_total",
                "gate verdicts by action",
                {"action": action},
            )
            for action in ("accept", "impute", "quarantine")
        }
        self._c_reasons: dict[str, MetricCounter] = {}
        for inst in (self._c_seen, *self._c_actions.values()):
            self._registry.register(inst)
        self._last = np.full(features, np.nan)
        self._count = 0
        self._mean = np.zeros(features)
        self._m2 = np.zeros(features)

    # -- counter views ----------------------------------------------------------

    @property
    def n_seen(self) -> int:
        return int(self._c_seen.value)

    @property
    def n_accepted(self) -> int:
        return int(self._c_actions["accept"].value)

    @property
    def n_imputed(self) -> int:
        return int(self._c_actions["impute"].value)

    @property
    def n_quarantined(self) -> int:
        return int(self._c_actions["quarantine"].value)

    @property
    def reasons(self) -> Counter[str]:
        """Per-reason defect counts (view over the registry instruments)."""
        return Counter({k: int(c.value) for k, c in self._c_reasons.items() if c.value})

    def _count_reason(self, reason: str) -> None:
        counter = self._c_reasons.get(reason)
        if counter is None:
            counter = MetricCounter(
                "serving_gate_reasons_total", "gate defect classes", {"reason": reason}
            )
            self._registry.register(counter)
            self._c_reasons[reason] = counter
        counter.inc()

    # -- internals -------------------------------------------------------------

    def _quarantine(self, reason: str) -> GateResult:
        self._c_actions["quarantine"].inc()
        self._count_reason(reason)
        return GateResult("quarantine", None, reason)

    def _absorb(self, record: np.ndarray) -> None:
        self._last = record.copy()
        self._count += 1
        delta = record - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (record - self._mean)

    def _running_std(self) -> np.ndarray:
        if self._count < 2:
            return np.zeros(self.features)
        return np.sqrt(self._m2 / (self._count - 1))

    def band(self, sigma: float) -> tuple[np.ndarray, np.ndarray] | None:
        """``(lo, hi)`` plausibility band per feature, or None before arming."""
        if self._count < self.policy.min_history:
            return None
        std = self._running_std()
        return self._mean - sigma * std, self._mean + sigma * std

    # -- API -------------------------------------------------------------------

    def check(self, record: Any) -> GateResult:
        """Gate one incoming record; never raises on malformed input."""
        self._c_seen.inc()
        try:
            arr = np.atleast_1d(np.asarray(record, float)).ravel()
        except (TypeError, ValueError):
            return self._quarantine("unparseable")
        if arr.shape != (self.features,):
            return self._quarantine("arity")

        repaired = arr.copy()
        finite = np.isfinite(arr)
        reason: str | None = None
        if not finite.any():
            return self._quarantine("empty")
        if not finite.all():
            if self.policy.impute == "drop":
                return self._quarantine("missing")
            fill = self._last if self.policy.impute == "last" else self._mean
            usable = np.isfinite(fill) if self.policy.impute == "last" else self._count > 0
            if not np.all(np.where(finite, True, usable)):
                # a missing cell with no history to impute from
                return self._quarantine("no_history")
            repaired[~finite] = fill[~finite]
            reason = "missing"

        if self.policy.outlier_sigma is not None and self._count >= self.policy.min_history:
            std = self._running_std()
            band = self.policy.outlier_sigma * std
            wild = (std > 0) & (np.abs(repaired - self._mean) > band)
            if wild.any():
                clamped = repaired.copy()
                clamped[wild] = (
                    self._mean[wild]
                    + np.sign(repaired[wild] - self._mean[wild]) * band[wild]
                )
                if self.policy.outlier_action == "quarantine":
                    # the record is dropped, but the *clamped* value still
                    # feeds the running moments: a genuine regime shift keeps
                    # pulling the band toward itself (bounded influence) and
                    # gets re-admitted, while an impulse fault barely moves it
                    self._absorb(clamped)
                    return self._quarantine("outlier")
                repaired = clamped
                reason = "outlier" if reason is None else reason

        self._absorb(repaired)
        if reason is None:
            self._c_actions["accept"].inc()
            return GateResult("accept", repaired)
        self._c_actions["impute"].inc()
        self._count_reason(reason)
        return GateResult("impute", repaired, reason)

    # -- checkpointing ---------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "n_seen": self.n_seen,
            "n_accepted": self.n_accepted,
            "n_imputed": self.n_imputed,
            "n_quarantined": self.n_quarantined,
            "reasons": dict(self.reasons),
            "last": self._last.copy(),
            "count": self._count,
            "mean": self._mean.copy(),
            "m2": self._m2.copy(),
        }

    def load_state_dict(self, state: dict) -> None:
        self._c_seen.restore(int(state["n_seen"]))
        self._c_actions["accept"].restore(int(state["n_accepted"]))
        self._c_actions["impute"].restore(int(state["n_imputed"]))
        self._c_actions["quarantine"].restore(int(state["n_quarantined"]))
        for counter in self._c_reasons.values():
            counter.restore(0)
        for reason, count in dict(state["reasons"]).items():
            self._count_reason(reason)
            self._c_reasons[reason].restore(int(count))
        self._last = np.asarray(state["last"], float).copy()
        self._count = int(state["count"])
        self._mean = np.asarray(state["mean"], float).copy()
        self._m2 = np.asarray(state["m2"], float).copy()


# ---------------------------------------------------------------------------
# fleet (vectorized) input gate
# ---------------------------------------------------------------------------

#: integer encodings used by :class:`FleetGateResult` (hot-path friendly)
GATE_ACCEPT, GATE_IMPUTE, GATE_QUARANTINE = 0, 1, 2
#: reason codes -> the reason strings :class:`InputGate` uses
GATE_REASONS = (None, "missing", "outlier", "empty", "no_history")
_R_NONE, _R_MISSING, _R_OUTLIER, _R_EMPTY, _R_NO_HISTORY = range(5)


@dataclass(frozen=True)
class FleetGateResult:
    """Columnar outcome of gating one ``(streams, features)`` tick.

    ``actions`` holds :data:`GATE_ACCEPT` / :data:`GATE_IMPUTE` /
    :data:`GATE_QUARANTINE` per stream, ``reasons`` indexes into
    :data:`GATE_REASONS`, and ``records`` is the repaired tick matrix
    (rows of quarantined streams keep their raw values — callers must
    not absorb them).
    """

    actions: np.ndarray  # (N,) int8
    records: np.ndarray  # (N, F) float
    reasons: np.ndarray  # (N,) int8

    @property
    def accepted(self) -> np.ndarray:
        return self.actions != GATE_QUARANTINE


class FleetGate:
    """Vectorized :class:`InputGate` over N parallel streams.

    Runs the NaN / empty-record / imputation / Welford-band checks on a
    whole ``(streams, features)`` tick at once while keeping *per-stream*
    running moments, verdict counters and reason tallies — each stream's
    decisions and statistics are bit-identical to what a dedicated
    :class:`InputGate` fed the same records would produce. The one
    intentional difference: a tick is a uniformly shaped float matrix,
    so the scalar gate's ``"unparseable"`` / ``"arity"`` defects cannot
    occur here (a stream with no data this tick is an all-NaN row, which
    quarantines as ``"empty"``); malformed per-stream payloads must be
    mapped to NaN rows by whatever assembles the tick.
    """

    def __init__(
        self,
        streams: int,
        features: int,
        policy: GatePolicy | None = None,
        registry: MetricRegistry | None = None,
    ) -> None:
        if streams < 1 or features < 1:
            raise ValueError(f"streams and features must be >= 1, got {streams}, {features}")
        self.streams = streams
        self.features = features
        self.policy = policy or GatePolicy()
        self._registry = get_registry(registry)
        self._c_seen = MetricCounter(
            "serving_gate_seen_total", "records offered to the input gate"
        )
        self._c_actions = {
            action: MetricCounter(
                "serving_gate_records_total",
                "gate verdicts by action",
                {"action": action},
            )
            for action in ("accept", "impute", "quarantine")
        }
        self._c_reasons: dict[str, MetricCounter] = {}
        for inst in (self._c_seen, *self._c_actions.values()):
            self._registry.register(inst)
        # per-stream verdict counters (checkpointed serving state)
        self._n_seen = np.zeros(streams, dtype=np.int64)
        self._n_accepted = np.zeros(streams, dtype=np.int64)
        self._n_imputed = np.zeros(streams, dtype=np.int64)
        self._n_quarantined = np.zeros(streams, dtype=np.int64)
        self._reason_counts = np.zeros((len(GATE_REASONS), streams), dtype=np.int64)
        # per-stream running moments over accepted data (Welford)
        self._last = np.full((streams, features), np.nan)
        self._count = np.zeros(streams, dtype=np.int64)
        self._mean = np.zeros((streams, features))
        self._m2 = np.zeros((streams, features))

    # -- counter views ----------------------------------------------------------

    @property
    def n_seen(self) -> np.ndarray:
        return self._n_seen.copy()

    @property
    def n_accepted(self) -> np.ndarray:
        return self._n_accepted.copy()

    @property
    def n_imputed(self) -> np.ndarray:
        return self._n_imputed.copy()

    @property
    def n_quarantined(self) -> np.ndarray:
        return self._n_quarantined.copy()

    def reasons(self, stream: int | None = None) -> Counter[str]:
        """Defect counts for one stream (or the whole fleet)."""
        counts = (
            self._reason_counts.sum(axis=1)
            if stream is None
            else self._reason_counts[:, stream]
        )
        return Counter(
            {
                name: int(c)
                for name, c in zip(GATE_REASONS, counts)
                if name is not None and c
            }
        )

    # -- internals -------------------------------------------------------------

    def _obs_reason(self, reason: str, amount: int) -> None:
        counter = self._c_reasons.get(reason)
        if counter is None:
            counter = MetricCounter(
                "serving_gate_reasons_total", "gate defect classes", {"reason": reason}
            )
            self._registry.register(counter)
            self._c_reasons[reason] = counter
        counter.inc(amount)

    def _absorb_rows(self, rows: np.ndarray, values: np.ndarray) -> None:
        """Welford update for ``rows`` (bool mask) with per-stream ``values``."""
        idx = np.flatnonzero(rows)
        if idx.size == 0:
            return
        vals = values[idx]
        self._last[idx] = vals
        self._count[idx] += 1
        delta = vals - self._mean[idx]
        new_mean = self._mean[idx] + delta / self._count[idx][:, None]
        self._mean[idx] = new_mean
        self._m2[idx] += delta * (vals - new_mean)

    def _running_std(self) -> np.ndarray:
        std = np.zeros((self.streams, self.features))
        ok = self._count >= 2
        if ok.any():
            std[ok] = np.sqrt(self._m2[ok] / (self._count[ok, None] - 1))
        return std

    def band(self, sigma: float) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-stream ``(lo, hi, armed)`` plausibility bands.

        ``lo``/``hi`` are ``(streams, features)``; rows where ``armed``
        is False have not seen ``min_history`` accepted records yet and
        must not be used (the scalar gate returns ``None`` there).
        """
        armed = self._count >= self.policy.min_history
        std = self._running_std()
        return self._mean - sigma * std, self._mean + sigma * std, armed

    # -- API -------------------------------------------------------------------

    def check_tick(self, tick: np.ndarray) -> FleetGateResult:
        """Gate one ``(streams, features)`` tick; all streams at once."""
        arr = np.asarray(tick, float)
        if arr.shape != (self.streams, self.features):
            raise ValueError(
                f"expected tick of shape ({self.streams}, {self.features}), got {arr.shape}"
            )
        n = self.streams
        self._n_seen += 1
        self._c_seen.inc(n)

        actions = np.zeros(n, dtype=np.int8)
        reasons = np.zeros(n, dtype=np.int8)
        repaired = arr.copy()
        finite = np.isfinite(arr)
        row_finite = finite.all(axis=1)

        empty = ~finite.any(axis=1)
        quarantined = empty.copy()
        reasons[empty] = _R_EMPTY

        missing_rows = ~row_finite & ~empty
        if missing_rows.any():
            if self.policy.impute == "drop":
                quarantined |= missing_rows
                reasons[missing_rows] = _R_MISSING
            else:
                if self.policy.impute == "last":
                    fill = self._last
                    usable = np.isfinite(self._last)
                else:
                    fill = self._mean
                    usable = np.broadcast_to((self._count > 0)[:, None], finite.shape)
                # a missing cell with no history to impute from
                no_hist = missing_rows & ~np.where(finite, True, usable).all(axis=1)
                quarantined |= no_hist
                reasons[no_hist] = _R_NO_HISTORY
                fixable = missing_rows & ~no_hist
                cells = ~finite & fixable[:, None]
                repaired[cells] = fill[cells]
                reasons[fixable] = _R_MISSING

        if self.policy.outlier_sigma is not None:
            armed = ~quarantined & (self._count >= self.policy.min_history)
            if armed.any():
                std = self._running_std()
                band = self.policy.outlier_sigma * std
                wild = armed[:, None] & (std > 0) & (np.abs(repaired - self._mean) > band)
                wild_rows = wild.any(axis=1)
                if wild_rows.any():
                    clamped = np.where(
                        wild,
                        self._mean + np.sign(repaired - self._mean) * band,
                        repaired,
                    )
                    if self.policy.outlier_action == "quarantine":
                        # drop the record, but feed the *clamped* value to the
                        # running moments (bounded influence — see InputGate)
                        self._absorb_rows(wild_rows, clamped)
                        quarantined |= wild_rows
                        reasons[wild_rows] = _R_OUTLIER
                    else:
                        repaired = np.where(wild_rows[:, None], clamped, repaired)
                        reasons[wild_rows & (reasons == _R_NONE)] = _R_OUTLIER

        accepted = ~quarantined
        self._absorb_rows(accepted, repaired)
        imputed = accepted & (reasons != _R_NONE)
        clean = accepted & (reasons == _R_NONE)
        actions[imputed] = GATE_IMPUTE
        actions[quarantined] = GATE_QUARANTINE

        self._n_accepted += clean
        self._n_imputed += imputed
        self._n_quarantined += quarantined
        counted = np.flatnonzero(reasons != _R_NONE)
        if counted.size:
            np.add.at(self._reason_counts, (reasons[counted], counted), 1)
        n_clean, n_imp, n_quar = int(clean.sum()), int(imputed.sum()), int(quarantined.sum())
        if n_clean:
            self._c_actions["accept"].inc(n_clean)
        if n_imp:
            self._c_actions["impute"].inc(n_imp)
        if n_quar:
            self._c_actions["quarantine"].inc(n_quar)
        if n_imp or n_quar:
            for code, name in enumerate(GATE_REASONS):
                if name is None:
                    continue
                amount = int((reasons == code).sum())
                if amount:
                    self._obs_reason(name, amount)
        return FleetGateResult(actions=actions, records=repaired, reasons=reasons)

    # -- checkpointing ---------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "n_seen": self._n_seen.copy(),
            "n_accepted": self._n_accepted.copy(),
            "n_imputed": self._n_imputed.copy(),
            "n_quarantined": self._n_quarantined.copy(),
            "reason_counts": self._reason_counts.copy(),
            "last": self._last.copy(),
            "count": self._count.copy(),
            "mean": self._mean.copy(),
            "m2": self._m2.copy(),
        }

    def load_state_dict(self, state: dict) -> None:
        self._n_seen[...] = state["n_seen"]
        self._n_accepted[...] = state["n_accepted"]
        self._n_imputed[...] = state["n_imputed"]
        self._n_quarantined[...] = state["n_quarantined"]
        self._reason_counts[...] = state["reason_counts"]
        self._last[...] = state["last"]
        self._count[...] = state["count"]
        self._mean[...] = state["mean"]
        self._m2[...] = state["m2"]


# ---------------------------------------------------------------------------
# supervised execution
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SupervisorPolicy:
    """Retry/backoff/budget envelope for supervised calls.

    ``max_retries`` extra attempts follow a failed call, separated by
    ``backoff_base * backoff_factor**attempt`` seconds (capped at
    ``backoff_max``; a base of 0 disables sleeping, which tests use).
    ``time_budget`` is a wall-clock allowance spanning all attempts of
    one call: once exhausted no further retries are made, and a call
    that succeeds over budget is counted in ``n_budget_exceeded``.
    After ``fallback_after`` consecutive failed calls the owner should
    switch to its fallback forecaster (:meth:`Supervisor.should_fall_back`).
    """

    max_retries: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    time_budget: float | None = None
    fallback_after: int = 2

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0 or self.backoff_factor < 1 or self.backoff_max < 0:
            raise ValueError("backoff parameters must be non-negative (factor >= 1)")
        if self.time_budget is not None and self.time_budget <= 0:
            raise ValueError(f"time_budget must be positive, got {self.time_budget}")
        if self.fallback_after < 1:
            raise ValueError(f"fallback_after must be >= 1, got {self.fallback_after}")


class Supervisor:
    """Execute callables under the failure-isolation policy.

    One instance supervises one duty (the predictor keeps separate
    instances for refits and predictions, so a flaky refit path does not
    mask a healthy serving path). Exceptions never escape
    :meth:`run` — the caller gets ``(ok, result)`` and decides how to
    degrade.

    Call/retry/failure counts live in :mod:`repro.obs` instruments
    labelled by ``duty`` and registered with ``registry`` (default: the
    process-global one); the historical ``n_calls``/``total_retries``/
    ``total_failures``/``n_budget_exceeded``/``consecutive_failures``
    attributes remain as exact per-instance views.
    """

    def __init__(
        self,
        policy: SupervisorPolicy | None = None,
        sleep: Callable[[float], None] = time.sleep,
        duty: str = "call",
        registry: MetricRegistry | None = None,
    ) -> None:
        self.policy = policy or SupervisorPolicy()
        self._sleep = sleep
        self.duty = duty
        labels = {"duty": duty}
        self._c_calls = MetricCounter(
            "serving_supervisor_calls_total", "supervised calls", labels
        )
        self._c_failures = MetricCounter(
            "serving_supervisor_failures_total", "terminally failed supervised calls", labels
        )
        self._c_retries = MetricCounter(
            "serving_supervisor_retries_total", "retry attempts after failures", labels
        )
        self._c_budget = MetricCounter(
            "serving_supervisor_budget_exceeded_total",
            "successful calls that overran the time budget",
            labels,
        )
        self._g_consecutive = MetricGauge(
            "serving_supervisor_consecutive_failures", "current failure streak", labels
        )
        reg = get_registry(registry)
        for inst in (
            self._c_calls,
            self._c_failures,
            self._c_retries,
            self._c_budget,
            self._g_consecutive,
        ):
            reg.register(inst)
        self.last_error: str | None = None

    # -- counter views ----------------------------------------------------------

    @property
    def n_calls(self) -> int:
        return int(self._c_calls.value)

    @property
    def total_failures(self) -> int:
        return int(self._c_failures.value)

    @property
    def total_retries(self) -> int:
        return int(self._c_retries.value)

    @property
    def n_budget_exceeded(self) -> int:
        return int(self._c_budget.value)

    @property
    def consecutive_failures(self) -> int:
        return int(self._g_consecutive.value)

    @property
    def should_fall_back(self) -> bool:
        return self.consecutive_failures >= self.policy.fallback_after

    def run(self, fn: Callable[[], T]) -> tuple[bool, T | None]:
        """Call ``fn`` with retries; return ``(True, result)`` or ``(False, None)``."""
        self._c_calls.inc()
        start = time.perf_counter()
        attempt = 0
        while True:
            try:
                result = fn()
            except Exception as exc:  # noqa: BLE001 — isolation is the point
                self.last_error = f"{type(exc).__name__}: {exc}"
                elapsed = time.perf_counter() - start
                out_of_budget = (
                    self.policy.time_budget is not None and elapsed >= self.policy.time_budget
                )
                if attempt >= self.policy.max_retries or out_of_budget:
                    self._g_consecutive.inc()
                    self._c_failures.inc()
                    return False, None
                delay = min(
                    self.policy.backoff_base * self.policy.backoff_factor**attempt,
                    self.policy.backoff_max,
                )
                if delay > 0:
                    self._sleep(delay)
                attempt += 1
                self._c_retries.inc()
            else:
                elapsed = time.perf_counter() - start
                if self.policy.time_budget is not None and elapsed > self.policy.time_budget:
                    self._c_budget.inc()
                self._g_consecutive.set(0)
                return True, result

    def record(self, ok: bool, error: str | None = None) -> None:
        """Count one externally executed attempt (the async refit path).

        The async refit engine runs the fit off the serving thread with
        no in-line retries; the owner reports the adopted outcome here,
        so the failure-streak/health/fallback semantics stay identical
        to a supervised in-line :meth:`run`.
        """
        self._c_calls.inc()
        if ok:
            self._g_consecutive.set(0)
        else:
            self.last_error = error
            self._g_consecutive.inc()
            self._c_failures.inc()

    # -- checkpointing ---------------------------------------------------------

    def state_dict(self) -> dict:
        return {
            "consecutive_failures": self.consecutive_failures,
            "total_failures": self.total_failures,
            "total_retries": self.total_retries,
            "n_calls": self.n_calls,
            "n_budget_exceeded": self.n_budget_exceeded,
            "last_error": self.last_error,
        }

    def load_state_dict(self, state: dict) -> None:
        self._g_consecutive.set(int(state["consecutive_failures"]))
        self._c_failures.restore(int(state["total_failures"]))
        self._c_retries.restore(int(state["total_retries"]))
        self._c_calls.restore(int(state["n_calls"]))
        self._c_budget.restore(int(state["n_budget_exceeded"]))
        self.last_error = state["last_error"]
