"""Concept-drift detection on the prediction-error stream.

When the workload's behaviour changes (a mutation point), a model fitted
on the old regime keeps erring in the same direction; the Page-Hinkley
test (Page 1954) detects that cumulative shift and triggers a refit —
how the paper's "mutation points" become an actionable signal online.
"""

from __future__ import annotations

import abc
import copy

__all__ = ["DriftDetector", "PageHinkley"]


class DriftDetector(abc.ABC):
    """Feed one score per step; ``drift_detected`` latches until reset."""

    def __init__(self) -> None:
        self.drift_detected = False
        self.n_seen = 0

    @abc.abstractmethod
    def update(self, value: float) -> bool:
        """Consume one observation; return True if drift fired this step."""

    def reset(self) -> None:
        self.drift_detected = False
        self.n_seen = 0

    # Detector state is plain scalars in every subclass, so generic
    # __dict__ snapshots give exact checkpoint/restore without each
    # subclass writing serialization code.

    def state_dict(self) -> dict:
        return copy.deepcopy(self.__dict__)

    def load_state_dict(self, state: dict) -> None:
        self.__dict__.update(copy.deepcopy(state))


class PageHinkley(DriftDetector):
    """Page-Hinkley test on a stream of (absolute) errors.

    Maintains the cumulative deviation of the stream from its running
    mean, minus a drift allowance ``delta``; fires when the deviation
    exceeds ``threshold`` after ``min_instances`` observations.
    """

    def __init__(
        self,
        delta: float = 0.005,
        threshold: float = 0.5,
        min_instances: int = 30,
    ) -> None:
        super().__init__()
        if threshold <= 0:
            raise ValueError(f"threshold must be positive, got {threshold}")
        if min_instances < 1:
            raise ValueError(f"min_instances must be >= 1, got {min_instances}")
        self.delta = delta
        self.threshold = threshold
        self.min_instances = min_instances
        self._mean = 0.0
        self._cumulative = 0.0
        self._minimum = 0.0

    def update(self, value: float) -> bool:
        self.n_seen += 1
        # running mean (Welford-style single pass)
        self._mean += (value - self._mean) / self.n_seen
        self._cumulative += value - self._mean - self.delta
        self._minimum = min(self._minimum, self._cumulative)
        fired = (
            self.n_seen >= self.min_instances
            and self._cumulative - self._minimum > self.threshold
        )
        if fired:
            self.drift_detected = True
        return fired

    def reset(self) -> None:
        super().reset()
        self._mean = 0.0
        self._cumulative = 0.0
        self._minimum = 0.0
