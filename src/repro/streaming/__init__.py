"""Online (real-time) resource prediction.

The paper's §V-C closes with applying the model "to the real-time
resource usage prediction". This subpackage provides that serving layer:
a ring buffer over incoming monitoring records, concept-drift detection
(Page-Hinkley), and an :class:`OnlinePredictor` that serves one-step
predictions while refitting its forecaster periodically or on drift,
scoring itself prequentially (test-then-train).

The serving loop is fault-tolerant: an input gate quarantines or
repairs corrupt records, refits run supervised with retry/backoff and a
fallback forecaster, every prediction carries a health status, and the
full serving state checkpoints to a crash-safe artifact. The
:mod:`~repro.streaming.faults` harness injects stream and refit faults
to exercise all of it. At fleet scale the sharded predictor adds
process-level self-healing — deadline-based failure detection,
supervised respawn with background checkpoint restore, a crash-loop
breaker — driven reproducibly by a :class:`ChaosSchedule` of scheduled
process faults.
"""

from .buffer import MatrixRingBuffer, RollingBuffer
from .checkpoint import (
    CheckpointError,
    read_checkpoint,
    try_read_checkpoint,
    write_checkpoint,
)
from .drift import DriftDetector, PageHinkley
from .faults import (
    ChaosSchedule,
    FaultConfig,
    FaultInjector,
    InjectedFault,
    ProcessFault,
)
from .fleet import FleetPredictor, FleetTick
from .online import OnlinePredictor, PredictionRecord
from .refit import AsyncRefitEngine, ModelSlot, RefitOutcome, RefitTask
from .resilience import (
    FleetGate,
    FleetGateResult,
    GatePolicy,
    GateResult,
    HealthStatus,
    InputGate,
    Supervisor,
    SupervisorPolicy,
)
from .shard import (
    AllShardsFailedError,
    RespawnPolicy,
    ShardedFleetPredictor,
    shard_boundaries,
)
from .shm import (
    SharedMatrixRingBuffer,
    ShmArraySpec,
    ShmBlock,
    SlottedShmBlock,
    ring_specs,
    slotted_specs,
)

__all__ = [
    "RollingBuffer",
    "MatrixRingBuffer",
    "FleetPredictor",
    "FleetTick",
    "AsyncRefitEngine",
    "RefitTask",
    "RefitOutcome",
    "ModelSlot",
    "ShardedFleetPredictor",
    "RespawnPolicy",
    "AllShardsFailedError",
    "shard_boundaries",
    "SharedMatrixRingBuffer",
    "ShmBlock",
    "SlottedShmBlock",
    "ShmArraySpec",
    "ring_specs",
    "slotted_specs",
    "FleetGate",
    "FleetGateResult",
    "PageHinkley",
    "DriftDetector",
    "OnlinePredictor",
    "PredictionRecord",
    "HealthStatus",
    "GatePolicy",
    "GateResult",
    "InputGate",
    "Supervisor",
    "SupervisorPolicy",
    "FaultConfig",
    "FaultInjector",
    "InjectedFault",
    "ProcessFault",
    "ChaosSchedule",
    "CheckpointError",
    "write_checkpoint",
    "read_checkpoint",
    "try_read_checkpoint",
]
