"""Online (real-time) resource prediction.

The paper's §V-C closes with applying the model "to the real-time
resource usage prediction". This subpackage provides that serving layer:
a ring buffer over incoming monitoring records, concept-drift detection
(Page-Hinkley), and an :class:`OnlinePredictor` that serves one-step
predictions while refitting its forecaster periodically or on drift,
scoring itself prequentially (test-then-train).
"""

from .buffer import RollingBuffer
from .drift import DriftDetector, PageHinkley
from .online import OnlinePredictor, PredictionRecord

__all__ = [
    "RollingBuffer",
    "PageHinkley",
    "DriftDetector",
    "OnlinePredictor",
    "PredictionRecord",
]
