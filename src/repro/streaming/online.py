"""Online prediction service: buffer -> predict -> score -> (re)fit.

Prequential protocol: for each arriving record the predictor first emits
a forecast for it from the previous state (test), then absorbs the record
(train). Refits happen every ``refit_interval`` records and whenever the
Page-Hinkley detector fires on the absolute-error stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..models.base import Forecaster, create_forecaster
from .buffer import RollingBuffer
from .drift import DriftDetector, PageHinkley

__all__ = ["PredictionRecord", "OnlinePredictor"]


@dataclass(frozen=True)
class PredictionRecord:
    """One prequential step's outcome."""

    step: int
    prediction: float | None  # None while warming up
    actual: float
    error: float | None
    refit: bool
    drift: bool


@dataclass
class _OnlineStats:
    n_predictions: int = 0
    sum_abs_error: float = 0.0
    sum_sq_error: float = 0.0
    n_refits: int = 0
    n_drifts: int = 0
    errors: list[float] = field(default_factory=list)

    @property
    def mae(self) -> float:
        return self.sum_abs_error / max(self.n_predictions, 1)

    @property
    def mse(self) -> float:
        return self.sum_sq_error / max(self.n_predictions, 1)


class OnlinePredictor:
    """Serve one-step-ahead predictions over a live indicator stream.

    Parameters
    ----------
    forecaster_name, forecaster_kwargs:
        Registered forecaster refitted on the buffer contents. Cheap
        refittable models (``xgboost``, ``holt``, ``arima``) suit the
        online setting; deep models work but pay seconds per refit.
    window:
        Input window length fed to the forecaster.
    buffer_capacity:
        History kept for refits.
    refit_interval:
        Scheduled refit period (in records); drift can trigger earlier.
    target_col:
        Which feature column is the prediction target.
    detector:
        Drift detector over absolute errors (default Page-Hinkley).
    serve_dtype:
        Dtype of the preallocated inference window buffer (e.g.
        ``np.float32`` to serve in single precision; default float64).
    """

    def __init__(
        self,
        forecaster_name: str = "xgboost",
        forecaster_kwargs: dict[str, Any] | None = None,
        window: int = 12,
        buffer_capacity: int = 600,
        refit_interval: int = 100,
        min_fit_size: int | None = None,
        target_col: int = 0,
        features: int = 1,
        detector: DriftDetector | None = None,
        serve_dtype: np.dtype | type = np.float64,
    ) -> None:
        if buffer_capacity < window + 2:
            raise ValueError(
                f"buffer_capacity ({buffer_capacity}) must exceed window+1 ({window + 1})"
            )
        if refit_interval < 1:
            raise ValueError(f"refit_interval must be >= 1, got {refit_interval}")
        self.forecaster_name = forecaster_name
        self.forecaster_kwargs = dict(forecaster_kwargs or {})
        self.forecaster_kwargs.setdefault("target_col", target_col)
        self.window = window
        self.refit_interval = refit_interval
        self.min_fit_size = min_fit_size if min_fit_size is not None else 3 * window
        self.target_col = target_col
        self.buffer = RollingBuffer(buffer_capacity, features)
        self.detector = detector if detector is not None else PageHinkley()
        self.model: Forecaster | None = None
        self.stats = _OnlineStats()
        self._step = 0
        self._since_refit = 0
        # preallocated (1, window, features) inference input — refilled in
        # place each step instead of re-materializing the buffer tail
        self._hist = np.empty((1, window, features), dtype=serve_dtype)

    # -- internals -------------------------------------------------------------

    def _windows_from_buffer(self) -> tuple[np.ndarray, np.ndarray]:
        from ..data.windowing import make_windows

        data = self.buffer.view()
        return make_windows(data, data[:, self.target_col], self.window, horizon=1)

    def _refit(self) -> None:
        x, y = self._windows_from_buffer()
        self.model = create_forecaster(self.forecaster_name, **self.forecaster_kwargs)
        self.model.fit(x, y)
        self.stats.n_refits += 1
        self._since_refit = 0

    def _predict_next(self) -> float | None:
        if self.model is None or len(self.buffer) < self.window:
            return None
        self.buffer.last_into(self._hist[0])
        return float(self.model.predict(self._hist)[0, 0])

    # -- API -------------------------------------------------------------------

    def process(self, record: np.ndarray) -> PredictionRecord:
        """Prequential step: predict ``record``'s target, then absorb it."""
        record = np.atleast_1d(np.asarray(record, float))
        actual = float(record[self.target_col])

        prediction = self._predict_next()
        error = None
        drift = False
        if prediction is not None:
            error = abs(prediction - actual)
            self.stats.n_predictions += 1
            self.stats.sum_abs_error += error
            self.stats.sum_sq_error += error**2
            self.stats.errors.append(error)
            drift = self.detector.update(error)
            if drift:
                self.stats.n_drifts += 1

        self.buffer.append(record)
        self._step += 1
        self._since_refit += 1

        needs_fit = self.model is None and len(self.buffer) >= max(
            self.min_fit_size, self.window + 2
        )
        scheduled = self.model is not None and self._since_refit >= self.refit_interval
        refit = False
        if needs_fit or scheduled or (drift and len(self.buffer) >= self.min_fit_size):
            self._refit()
            if drift:
                self.detector.reset()
            refit = True

        return PredictionRecord(
            step=self._step - 1,
            prediction=prediction,
            actual=actual,
            error=error,
            refit=refit,
            drift=drift,
        )

    def run(self, records: np.ndarray) -> list[PredictionRecord]:
        """Process a batch of records sequentially (replay a trace)."""
        records = np.asarray(records, float)
        if records.ndim == 1:
            records = records[:, None]
        return [self.process(row) for row in records]
