"""Online prediction service: gate -> buffer -> predict -> score -> (re)fit.

Prequential protocol: for each arriving record the predictor first emits
a forecast for it from the previous state (test), then absorbs the record
(train). Refits happen every ``refit_interval`` records and whenever the
Page-Hinkley detector fires on the absolute-error stream.

Unlike the first version of this module, the serving loop is built for a
hostile stream (paper §III-A: data "partially incomplete or has outliers
due to network anomalies, system interruption etc."):

* every record passes an :class:`~repro.streaming.resilience.InputGate`
  before it can touch the :class:`RollingBuffer` — NaN or malformed
  records are repaired or quarantined and *counted*, never absorbed;
* refits and predictions run under a
  :class:`~repro.streaming.resilience.Supervisor` (retry + backoff +
  wall-time budget); repeated refit failure degrades to a registered
  fallback forecaster instead of killing the service;
* every :class:`PredictionRecord` carries a
  :class:`~repro.streaming.resilience.HealthStatus`;
* the full serving state checkpoints to a single crash-safe artifact
  (:meth:`OnlinePredictor.save` / :meth:`OnlinePredictor.restore`), so a
  restarted process resumes mid-stream bit-for-bit.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

import numpy as np

from ..models.base import Forecaster, create_forecaster
from ..obs import trace
from ..obs.registry import Gauge as MetricGauge
from ..obs.registry import Histogram as MetricHistogram
from ..obs.registry import MetricRegistry, get_registry, is_enabled, log_buckets
from .buffer import RollingBuffer
from .checkpoint import CheckpointError, read_checkpoint, write_checkpoint
from .drift import DriftDetector, PageHinkley
from .resilience import GatePolicy, HealthStatus, InputGate, Supervisor, SupervisorPolicy

#: numeric encoding of :class:`HealthStatus` for the health gauge
_HEALTH_LEVEL = {
    HealthStatus.HEALTHY: 0,
    HealthStatus.DEGRADED: 1,
    HealthStatus.FALLBACK: 2,
    HealthStatus.RECOVERING: 3,
}

__all__ = ["PredictionRecord", "OnlinePredictor"]


@dataclass(frozen=True)
class PredictionRecord:
    """One prequential step's outcome."""

    step: int
    prediction: float | None  # None while warming up or when quarantined
    actual: float
    error: float | None
    refit: bool
    drift: bool
    health: HealthStatus = HealthStatus.HEALTHY
    #: gate verdict for this record: None (clean), "imputed" or "quarantined"
    gated: str | None = None


@dataclass
class _OnlineStats:
    n_predictions: int = 0
    sum_abs_error: float = 0.0
    sum_sq_error: float = 0.0
    n_refits: int = 0
    n_drifts: int = 0
    n_refit_failures: int = 0
    n_predict_failures: int = 0
    n_fallback_predictions: int = 0
    n_fallback_predict_failures: int = 0
    n_clamped_predictions: int = 0
    #: recent per-step errors; bounded by default (see ``error_history``)
    errors: deque[float] = field(default_factory=lambda: deque(maxlen=512))

    @property
    def mae(self) -> float:
        return self.sum_abs_error / max(self.n_predictions, 1)

    @property
    def mse(self) -> float:
        return self.sum_sq_error / max(self.n_predictions, 1)

    def state_dict(self) -> dict:
        return {
            "n_predictions": self.n_predictions,
            "sum_abs_error": self.sum_abs_error,
            "sum_sq_error": self.sum_sq_error,
            "n_refits": self.n_refits,
            "n_drifts": self.n_drifts,
            "n_refit_failures": self.n_refit_failures,
            "n_predict_failures": self.n_predict_failures,
            "n_fallback_predictions": self.n_fallback_predictions,
            "n_fallback_predict_failures": self.n_fallback_predict_failures,
            "n_clamped_predictions": self.n_clamped_predictions,
            "errors": list(self.errors),
            "errors_maxlen": self.errors.maxlen,
        }

    def load_state_dict(self, state: dict) -> None:
        self.n_predictions = int(state["n_predictions"])
        self.sum_abs_error = float(state["sum_abs_error"])
        self.sum_sq_error = float(state["sum_sq_error"])
        self.n_refits = int(state["n_refits"])
        self.n_drifts = int(state["n_drifts"])
        self.n_refit_failures = int(state["n_refit_failures"])
        self.n_predict_failures = int(state["n_predict_failures"])
        self.n_fallback_predictions = int(state["n_fallback_predictions"])
        # key absent in pre-fleet checkpoints; the count started at 0 there
        self.n_fallback_predict_failures = int(state.get("n_fallback_predict_failures", 0))
        self.n_clamped_predictions = int(state["n_clamped_predictions"])
        self.errors = deque(state["errors"], maxlen=state["errors_maxlen"])


class OnlinePredictor:
    """Serve one-step-ahead predictions over a live indicator stream.

    Parameters
    ----------
    forecaster_name, forecaster_kwargs:
        Registered forecaster refitted on the buffer contents. Cheap
        refittable models (``xgboost``, ``holt``, ``arima``) suit the
        online setting; deep models work but pay seconds per refit.
    window:
        Input window length fed to the forecaster.
    buffer_capacity:
        History kept for refits.
    refit_interval:
        Scheduled refit period (in records); drift can trigger earlier.
    target_col:
        Which feature column is the prediction target.
    detector:
        Drift detector over absolute errors (default Page-Hinkley).
    serve_dtype:
        Dtype of the preallocated inference window buffer (e.g.
        ``np.float32`` to serve in single precision; default float64).
    gate_policy:
        Input-gate behaviour (imputation / outlier screening); the gate
        is always on — it is what keeps one NaN record from silently
        poisoning every later training window.
    supervisor_policy:
        Retry/backoff/budget envelope for refits (predictions reuse it
        with retries disabled — retrying a deterministic forward pass
        cannot help).
    fallback_forecaster, fallback_kwargs:
        Registered forecaster served when the primary is unusable
        (never fitted, or ``fallback_after`` consecutive refit
        failures). Must be cheap and hard to break: ``"persistence"``
        (default), ``"mean"`` or ``"holt"``.
    error_history:
        How many recent per-step errors ``stats.errors`` retains
        (ring-buffer semantics). Pass ``None`` to keep the full stream —
        opt-in, because an unbounded list in a long-running server is a
        slow memory leak.
    refit_fault_hook:
        Test/chaos hook invoked at the start of every refit attempt;
        raising from it simulates a refit crash (see
        :class:`~repro.streaming.faults.FaultInjector.refit_fault`).
    registry:
        :class:`~repro.obs.MetricRegistry` receiving the serving metrics
        (per-record latency histogram, health gauge, refit/drift/fallback
        counters, plus the gate and supervisor instruments). ``None``
        uses the process-global registry. Optional telemetry respects
        :func:`repro.obs.set_enabled`; the gate/supervisor counts are
        serving state and always record.
    span_sample:
        Open a ``serving.process`` trace span on every ``span_sample``-th
        record (default 8). The latency histogram still sees *every*
        record — sampling only thins the trace tree, the standard
        tracing trade-off on per-record hot paths. Pass ``1`` to trace
        every record.
    """

    def __init__(
        self,
        forecaster_name: str = "xgboost",
        forecaster_kwargs: dict[str, Any] | None = None,
        window: int = 12,
        buffer_capacity: int = 600,
        refit_interval: int = 100,
        min_fit_size: int | None = None,
        target_col: int = 0,
        features: int = 1,
        detector: DriftDetector | None = None,
        serve_dtype: np.dtype | type = np.float64,
        gate_policy: GatePolicy | None = None,
        supervisor_policy: SupervisorPolicy | None = None,
        fallback_forecaster: str = "persistence",
        fallback_kwargs: dict[str, Any] | None = None,
        error_history: int | None = 512,
        refit_fault_hook: Callable[[], None] | None = None,
        registry: MetricRegistry | None = None,
        span_sample: int = 8,
    ) -> None:
        if span_sample < 1:
            raise ValueError(f"span_sample must be >= 1, got {span_sample}")
        if buffer_capacity < window + 2:
            raise ValueError(
                f"buffer_capacity ({buffer_capacity}) must exceed window+1 ({window + 1})"
            )
        if refit_interval < 1:
            raise ValueError(f"refit_interval must be >= 1, got {refit_interval}")
        self.forecaster_name = forecaster_name
        self.forecaster_kwargs = dict(forecaster_kwargs or {})
        self.forecaster_kwargs.setdefault("target_col", target_col)
        self.window = window
        self.refit_interval = refit_interval
        self.min_fit_size = min_fit_size if min_fit_size is not None else 3 * window
        self.target_col = target_col
        self.buffer = RollingBuffer(buffer_capacity, features)
        self.detector = detector if detector is not None else PageHinkley()
        obs_registry = get_registry(registry)
        self.gate = InputGate(features, gate_policy, registry=obs_registry)
        self.refit_supervisor = Supervisor(supervisor_policy, duty="refit", registry=obs_registry)
        # predictions: same budget envelope, but no retries
        predict_policy = supervisor_policy or SupervisorPolicy()
        self.predict_supervisor = Supervisor(
            SupervisorPolicy(
                max_retries=0,
                backoff_base=0.0,
                time_budget=predict_policy.time_budget,
                fallback_after=predict_policy.fallback_after,
            ),
            duty="predict",
            registry=obs_registry,
        )
        # serving telemetry: per-record latency, health level, event mirrors
        self._h_latency = MetricHistogram(
            "serving_process_seconds",
            "per-record prequential step latency",
            buckets=log_buckets(1e-6, 10.0),
        )
        self._g_health = MetricGauge(
            "serving_health_state", "0=healthy 1=degraded 2=fallback"
        )
        self._obs_counters = {
            name: obs_registry.counter(f"serving_{name}_total", help)
            for name, help in (
                ("predictions", "predictions served"),
                ("refits", "successful refits"),
                ("refit_failures", "terminally failed refits"),
                ("drift_events", "drift detector firings"),
                ("fallback_predictions", "predictions served by the fallback"),
                ("fallback_predict_failures", "fallback forwards that also failed"),
                ("clamped_predictions", "predictions clamped into the plausibility band"),
            )
        }
        for inst in (self._h_latency, self._g_health):
            obs_registry.register(inst)
        # hot-path aliases: process() runs per record, so spare it the dict
        # lookups and only touch the health gauge when the level changes
        self._c_predictions = self._obs_counters["predictions"]
        self._last_health_level: int | None = None
        self._span_sample = span_sample
        self._span_tick = 0
        self.fallback_forecaster = fallback_forecaster
        self.fallback_kwargs = dict(fallback_kwargs or {})
        self.fallback_kwargs.setdefault("target_col", target_col)
        self.refit_fault_hook = refit_fault_hook
        self.model: Forecaster | None = None
        self.fallback_model: Forecaster | None = None
        self.on_fallback = False
        self.error_history = error_history
        self.stats = _OnlineStats(errors=deque(maxlen=error_history))
        self._step = 0
        self._since_refit = 0
        self._serve_dtype = np.dtype(serve_dtype)
        # preallocated (1, window, features) inference input — refilled in
        # place each step instead of re-materializing the buffer tail
        self._hist = np.empty((1, window, features), dtype=serve_dtype)

    # -- health ---------------------------------------------------------------

    @property
    def health(self) -> HealthStatus:
        """Current serving health (also stamped on every record)."""
        if self.on_fallback:
            return HealthStatus.FALLBACK
        if (
            self.refit_supervisor.consecutive_failures > 0
            or self.predict_supervisor.consecutive_failures > 0
        ):
            return HealthStatus.DEGRADED
        return HealthStatus.HEALTHY

    # -- internals -------------------------------------------------------------

    def _windows_from_buffer(self) -> tuple[np.ndarray, np.ndarray]:
        from ..data.windowing import make_windows

        data = self.buffer.view()
        return make_windows(data, data[:, self.target_col], self.window, horizon=1)

    def _fit_fallback(self) -> None:
        """Fit the fallback forecaster on the buffer (guarded, never raises)."""
        try:
            x, y = self._windows_from_buffer()
            model = create_forecaster(self.fallback_forecaster, **self.fallback_kwargs)
            model.fit(x, y)
            self.fallback_model = model
        except Exception:  # noqa: BLE001 — last line of defence stays up
            pass

    def _refit(self) -> bool:
        """Supervised refit; on terminal failure degrade instead of raising."""

        def attempt() -> Forecaster:
            if self.refit_fault_hook is not None:
                self.refit_fault_hook()
            x, y = self._windows_from_buffer()
            model = create_forecaster(self.forecaster_name, **self.forecaster_kwargs)
            model.fit(x, y)
            return model

        # reset the clock when the attempt *starts*: the supervisor only
        # catches Exception, so a BaseException escaping the fit must not
        # leave the scheduled trigger armed (it would re-fire a refit every
        # subsequent tick) — same semantics as the fleet, sync and async
        self._since_refit = 0
        ok, model = self.refit_supervisor.run(attempt)
        if ok:
            self.model = model
            self.on_fallback = False
            self.stats.n_refits += 1
            return True
        self.stats.n_refit_failures += 1
        if self.model is None or self.refit_supervisor.should_fall_back:
            self._fit_fallback()
            if self.fallback_model is not None:
                self.on_fallback = True
        return False

    def _predict_next(self) -> tuple[float | None, bool]:
        """Return ``(prediction, used_fallback)`` for the next step."""
        if len(self.buffer) < self.window:
            return None, False
        serving = self.fallback_model if self.on_fallback else self.model
        if serving is None:
            return None, False
        self.buffer.last_into(self._hist[0])

        def attempt() -> float:
            return float(serving.predict(self._hist)[0, 0])

        ok, value = self.predict_supervisor.run(attempt)
        if ok:
            return self._sanitize_prediction(value), self.on_fallback
        self.stats.n_predict_failures += 1
        # primary forward pass blew up: serve from the fallback instead
        if not self.on_fallback:
            if self.fallback_model is None:
                self._fit_fallback()
            if self.fallback_model is not None:
                try:
                    value = float(self.fallback_model.predict(self._hist)[0, 0])
                    return self._sanitize_prediction(value), True
                except Exception:  # noqa: BLE001 — the step is lost, but counted
                    self.stats.n_fallback_predict_failures += 1
        return None, False

    def _sanitize_prediction(self, value: float) -> float | None:
        """Output guard: reject non-finite, clamp into the plausibility band."""
        if not np.isfinite(value):
            self.stats.n_predict_failures += 1
            return None
        sigma = self.gate.policy.prediction_sigma
        if sigma is None:
            return value
        band = self.gate.band(sigma)
        if band is None:
            return value
        lo, hi = band[0][self.target_col], band[1][self.target_col]
        if value < lo or value > hi:
            self.stats.n_clamped_predictions += 1
            return float(np.clip(value, lo, hi))
        return value

    # -- API -------------------------------------------------------------------

    def process(self, record: np.ndarray) -> PredictionRecord:
        """Prequential step: gate ``record``, predict its target, absorb it.

        When observability is enabled every step's latency lands in the
        ``serving_process_seconds`` histogram, the health gauge tracks
        the stamped :class:`HealthStatus`, refit/drift/fallback events
        mirror into registry counters, and every ``span_sample``-th step
        runs inside a ``serving.process`` trace span.
        """
        if not is_enabled():
            return self._process_inner(record)
        st = self.stats
        b_refits = st.n_refits
        b_refit_failures = st.n_refit_failures
        b_drifts = st.n_drifts
        b_fallback = st.n_fallback_predictions
        b_fb_fail = st.n_fallback_predict_failures
        b_clamped = st.n_clamped_predictions
        t0 = time.perf_counter()
        self._span_tick += 1
        if self._span_tick >= self._span_sample:
            self._span_tick = 0
            with trace.span("serving.process"):
                result = self._process_inner(record)
        else:
            result = self._process_inner(record)
        self._h_latency.observe(time.perf_counter() - t0)
        level = _HEALTH_LEVEL[result.health]
        if level != self._last_health_level:
            self._last_health_level = level
            self._g_health.set(level)
        if result.prediction is not None:
            self._c_predictions.inc()
        counters = self._obs_counters
        if st.n_refits != b_refits:
            counters["refits"].inc(st.n_refits - b_refits)
        if st.n_refit_failures != b_refit_failures:
            counters["refit_failures"].inc(st.n_refit_failures - b_refit_failures)
        if st.n_drifts != b_drifts:
            counters["drift_events"].inc(st.n_drifts - b_drifts)
        if st.n_fallback_predictions != b_fallback:
            counters["fallback_predictions"].inc(st.n_fallback_predictions - b_fallback)
        if st.n_fallback_predict_failures != b_fb_fail:
            counters["fallback_predict_failures"].inc(
                st.n_fallback_predict_failures - b_fb_fail
            )
        if st.n_clamped_predictions != b_clamped:
            counters["clamped_predictions"].inc(st.n_clamped_predictions - b_clamped)
        return result

    def _process_inner(self, record: np.ndarray) -> PredictionRecord:
        gated = self.gate.check(record)
        if gated.action == "quarantine":
            # the record never reaches the buffer or the error stream; the
            # step still advances so downstream consumers stay aligned
            try:
                raw = np.atleast_1d(np.asarray(record, float)).ravel()
                actual = (
                    float(raw[self.target_col])
                    if raw.shape == (self.gate.features,)
                    else float("nan")
                )
            except (TypeError, ValueError, IndexError):
                actual = float("nan")
            self._step += 1
            return PredictionRecord(
                step=self._step - 1,
                prediction=None,
                actual=actual,
                error=None,
                refit=False,
                drift=False,
                health=self.health,
                gated="quarantined",
            )

        clean = gated.record
        actual = float(clean[self.target_col])

        prediction, used_fallback = self._predict_next()
        if used_fallback:
            self.stats.n_fallback_predictions += 1
        error = None
        drift = False
        if prediction is not None:
            error = abs(prediction - actual)
            self.stats.n_predictions += 1
            self.stats.sum_abs_error += error
            self.stats.sum_sq_error += error**2
            self.stats.errors.append(error)
            drift = self.detector.update(error)
            if drift:
                self.stats.n_drifts += 1

        self.buffer.append(clean)
        self._step += 1
        self._since_refit += 1

        needs_fit = (
            self.model is None
            and len(self.buffer) >= max(self.min_fit_size, self.window + 2)
            and (
                self.refit_supervisor.consecutive_failures == 0
                or self._since_refit >= self.refit_interval
            )
        )
        scheduled = self.model is not None and self._since_refit >= self.refit_interval
        refit = False
        if needs_fit or scheduled or (drift and len(self.buffer) >= self.min_fit_size):
            refit = self._refit()
            if drift:
                self.detector.reset()

        return PredictionRecord(
            step=self._step - 1,
            prediction=prediction,
            actual=actual,
            error=error,
            refit=refit,
            drift=drift,
            health=HealthStatus.FALLBACK if used_fallback else self.health,
            gated=gated.reason and "imputed",
        )

    def run(self, records: np.ndarray) -> list[PredictionRecord]:
        """Process a batch of records sequentially (replay a trace)."""
        records = np.asarray(records, float)
        if records.ndim == 1:
            records = records[:, None]
        with trace.span("serving.run") as sp:
            out = [self.process(row) for row in records]
            sp.add("records", len(out))
        return out

    # -- checkpoint / restore ----------------------------------------------------

    def state_dict(self) -> dict:
        """Full serving state: enough to resume the stream bit-for-bit."""
        return {
            "config": {
                "forecaster_name": self.forecaster_name,
                "forecaster_kwargs": dict(self.forecaster_kwargs),
                "window": self.window,
                "buffer_capacity": self.buffer.capacity,
                "refit_interval": self.refit_interval,
                "min_fit_size": self.min_fit_size,
                "target_col": self.target_col,
                "features": self.buffer.features,
                "serve_dtype": self._serve_dtype.str,
                "gate_policy": self.gate.policy,
                "supervisor_policy": self.refit_supervisor.policy,
                "fallback_forecaster": self.fallback_forecaster,
                "fallback_kwargs": dict(self.fallback_kwargs),
                "error_history": self.error_history,
            },
            "step": self._step,
            "since_refit": self._since_refit,
            "on_fallback": self.on_fallback,
            "buffer": self.buffer.state_dict(),
            "detector": self.detector,  # pickled whole: subclass-agnostic
            "gate": self.gate.state_dict(),
            "refit_supervisor": self.refit_supervisor.state_dict(),
            "predict_supervisor": self.predict_supervisor.state_dict(),
            "stats": self.stats.state_dict(),
            "model": None if self.model is None else self.model.to_bytes(),
            "fallback_model": (
                None if self.fallback_model is None else self.fallback_model.to_bytes()
            ),
        }

    def load_state_dict(self, state: dict) -> None:
        """Adopt a :meth:`state_dict`; the predictor must match its config."""
        cfg = state["config"]
        if (
            cfg["window"] != self.window
            or cfg["features"] != self.buffer.features
            or cfg["buffer_capacity"] != self.buffer.capacity
            or cfg["forecaster_name"] != self.forecaster_name
        ):
            raise CheckpointError(
                "checkpoint config mismatch: "
                f"saved (forecaster={cfg['forecaster_name']}, window={cfg['window']}, "
                f"features={cfg['features']}, capacity={cfg['buffer_capacity']}) vs "
                f"live (forecaster={self.forecaster_name}, window={self.window}, "
                f"features={self.buffer.features}, capacity={self.buffer.capacity})"
            )
        self._step = int(state["step"])
        self._since_refit = int(state["since_refit"])
        self.on_fallback = bool(state["on_fallback"])
        self.buffer.load_state_dict(state["buffer"])
        self.detector = state["detector"]
        self.gate.load_state_dict(state["gate"])
        self.refit_supervisor.load_state_dict(state["refit_supervisor"])
        self.predict_supervisor.load_state_dict(state["predict_supervisor"])
        self.stats.load_state_dict(state["stats"])
        self.model = None if state["model"] is None else Forecaster.from_bytes(state["model"])
        self.fallback_model = (
            None
            if state["fallback_model"] is None
            else Forecaster.from_bytes(state["fallback_model"])
        )

    def save(self, path: str | Path) -> None:
        """Checkpoint the full serving state atomically (crash-safe)."""
        write_checkpoint(path, {"kind": "online_predictor", "state": self.state_dict()})

    @classmethod
    def restore(cls, path: str | Path, **overrides: Any) -> "OnlinePredictor":
        """Rebuild a predictor from a checkpoint and resume mid-stream.

        ``overrides`` patch constructor arguments that are process-local
        and deliberately not persisted (``refit_fault_hook``, a live
        ``detector`` replacement, ...).
        """
        artifact = read_checkpoint(path)
        if not isinstance(artifact, dict) or artifact.get("kind") != "online_predictor":
            raise CheckpointError(f"{path} does not hold an OnlinePredictor checkpoint")
        state = artifact["state"]
        cfg = dict(state["config"])
        cfg["serve_dtype"] = np.dtype(cfg["serve_dtype"])
        cfg.update(overrides)
        predictor = cls(**cfg)
        predictor.load_state_dict(state)
        return predictor
