"""Async background refits with atomic weight swap.

A pooled refit in :class:`~repro.streaming.fleet.FleetPredictor` used to
run in-line with the serving tick, so the tick that triggered it paid
the full fit cost — exactly the p99 tail spike that blocks 10^6-stream
runs (ROADMAP item 3; cf. the pruned-GRU online predictor and esDNN in
PAPERS.md, which both assume model updates never block serving).

This module moves the fit off the serving path:

* :class:`RefitTask` is a self-contained fit request — forecaster name +
  kwargs, the pooled ``(x, y)`` training windows (copied, so the serving
  ring can keep mutating), an optional warm-start payload (the current
  model's bytes, resumed via :meth:`Forecaster.warm_fit`), and the fleet
  step at submission (the staleness anchor). Tasks pickle, so an
  in-flight refit survives checkpoint/restore by resubmission.
* :class:`AsyncRefitEngine` owns one background worker — a daemon
  thread (default; numpy kernels release the GIL so the fit genuinely
  overlaps serving on multicore) or a persistent spawned process (full
  isolation, pays one pickle of the task/model per refit) — with
  **one task in flight at a time**: ``submit`` rejects while busy (the
  caller's refit clock decides whether to retry next tick), ``poll`` is
  the non-blocking serving-path call that collects a finished fit.
* :class:`ModelSlot` is the atomic publication cell. The worker builds a
  **fresh** model object and publishes the completed
  ``(version, model, step)`` triple with a single reference assignment —
  readers either see the old triple or the new one, never a
  half-updated model (the hypothesis property test in
  ``tests/streaming/test_async_refit.py`` hammers this from a reader
  thread). The live serving model is never mutated by the worker; warm
  starts resume a *copy* deserialized from bytes.

The engine is mechanism only: the swap-adoption policy (when to poll,
what counts as a failure, staleness accounting) lives with the caller
in :class:`FleetPredictor`.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import threading
import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..models.base import Forecaster, create_forecaster

__all__ = ["RefitTask", "RefitOutcome", "ModelSlot", "AsyncRefitEngine", "fit_task"]

_BACKENDS = ("thread", "process")


@dataclass(frozen=True)
class RefitTask:
    """One self-contained background fit request.

    ``x``/``y`` are private copies of the pooled training windows —
    the submitting predictor's ring buffer keeps mutating while the fit
    runs, so the task must not alias serving memory. ``warm_state``
    carries the current model's :meth:`Forecaster.to_bytes` payload when
    the caller wants a warm-start resume; the worker deserializes a
    *copy*, so the live model is never touched off-thread.
    """

    forecaster_name: str
    forecaster_kwargs: dict[str, Any]
    x: np.ndarray
    y: np.ndarray
    warm_state: bytes | None = None
    warm_epochs: int | None = None
    step: int = -1  #: fleet step at submission — anchors refit lag/staleness

    def state_dict(self) -> dict:
        """Checkpoint payload; inverse of :meth:`from_state`."""
        return {
            "forecaster_name": self.forecaster_name,
            "forecaster_kwargs": dict(self.forecaster_kwargs),
            "x": np.array(self.x),
            "y": np.array(self.y),
            "warm_state": self.warm_state,
            "warm_epochs": self.warm_epochs,
            "step": self.step,
        }

    @classmethod
    def from_state(cls, state: dict) -> "RefitTask":
        return cls(**state)


@dataclass(frozen=True)
class RefitOutcome:
    """What the worker produced for one task (exactly one per submit)."""

    ok: bool
    model: Forecaster | None
    task: RefitTask
    error: str | None = None
    fit_seconds: float = 0.0


def fit_task(task: RefitTask) -> Forecaster:
    """Execute one fit request; shared by both backends (and sync callers).

    Warm path: deserialize the shipped weights and resume via
    :meth:`Forecaster.warm_fit` with the task's epoch budget. Any warm
    failure — corrupt payload, shape drift, model without warm support —
    falls back to a fit-from-scratch, so a warm request can only ever
    degrade to the cold behavior, never to no model.
    """
    if task.warm_state is not None:
        try:
            model = Forecaster.from_bytes(task.warm_state)
            if getattr(model, "supports_warm_fit", False):
                model.warm_fit(task.x, task.y, epochs=task.warm_epochs)
                return model
        except Exception:  # noqa: BLE001 — warm start is an optimization, not a contract
            pass
    model = create_forecaster(task.forecaster_name, **task.forecaster_kwargs)
    model.fit(task.x, task.y)
    return model


class ModelSlot:
    """Versioned atomic publication cell for model references.

    Publication is a single reference assignment of an immutable
    ``(version, model, step)`` triple — atomic under the GIL, so a
    reader on any thread sees either the previous complete triple or
    the new complete triple, never a torn mix of versions. The model
    object inside a triple is fully constructed *before* the assignment
    (the worker fits it first, then publishes), which is the
    happens-before edge that makes the swap safe without locks on the
    read path.
    """

    def __init__(self) -> None:
        self._cell: tuple[int, Forecaster | None, int] = (0, None, -1)

    @property
    def version(self) -> int:
        return self._cell[0]

    def publish(self, model: Forecaster, step: int) -> int:
        """Atomically install ``model``; returns the new version."""
        version = self._cell[0] + 1
        self._cell = (version, model, step)
        return version

    def read(self) -> tuple[int, Forecaster | None, int]:
        """One consistent ``(version, model, step)`` snapshot."""
        return self._cell


def _process_worker(conn: Any) -> None:  # pragma: no cover - child process
    """Persistent process backend: recv pickled tasks, send fitted bytes."""
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        if msg[0] == "stop":
            break
        task: RefitTask = pickle.loads(msg[1])
        t0 = time.perf_counter()
        try:
            model = fit_task(task)
            conn.send(("ok", model.to_bytes(), time.perf_counter() - t0))
        except Exception as exc:  # noqa: BLE001 — report, stay alive
            conn.send(
                ("error", f"{type(exc).__name__}: {exc}", time.perf_counter() - t0)
            )
    conn.close()


class AsyncRefitEngine:
    """One background fit at a time, results adopted via :class:`ModelSlot`.

    Lifecycle per refit::

        submit(task) -> True        # worker starts fitting off-path
        busy -> True                # until the fit lands
        poll() -> RefitOutcome      # non-blocking; exactly once per task

    ``submit`` while a task is in flight (or its outcome unconsumed)
    returns ``False`` — the caller's refit clock re-arms and tries again
    later, so refit cadence degrades gracefully to
    ``max(refit_interval, fit_time)`` instead of queueing stale work.

    ``pending_task()`` exposes the task that has not yet been *adopted*
    (in flight or finished-but-unpolled) so a checkpoint can persist it
    and a restore can resubmit it deterministically.
    """

    def __init__(self, backend: str = "thread") -> None:
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        self.backend = backend
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._pending: RefitTask | None = None
        self._outcome: RefitOutcome | None = None
        self._closed = False
        # thread backend
        self._thread: threading.Thread | None = None
        # process backend
        self._proc: Any = None
        self._conn: Any = None

    # -- worker plumbing -------------------------------------------------------

    def _ensure_thread(self) -> None:
        if self._thread is not None and self._thread.is_alive():
            return
        self._thread = threading.Thread(
            target=self._thread_main, name="refit-worker", daemon=True
        )
        self._thread.start()

    def _thread_main(self) -> None:
        while True:
            with self._cond:
                while self._pending is None and not self._closed:
                    self._cond.wait()
                if self._closed:
                    return
                task = self._pending
            t0 = time.perf_counter()
            try:
                model = fit_task(task)
                outcome = RefitOutcome(
                    True, model, task, fit_seconds=time.perf_counter() - t0
                )
            except Exception as exc:  # noqa: BLE001 — failures become outcomes
                outcome = RefitOutcome(
                    False,
                    None,
                    task,
                    error=f"{type(exc).__name__}: {exc}",
                    fit_seconds=time.perf_counter() - t0,
                )
            with self._cond:
                self._outcome = outcome
                self._pending = None
                self._cond.notify_all()

    def _ensure_process(self) -> None:
        if self._proc is not None and self._proc.is_alive():
            return
        ctx = mp.get_context("spawn")
        self._conn, child = ctx.Pipe()
        self._proc = ctx.Process(
            target=_process_worker, args=(child,), name="refit-worker", daemon=True
        )
        self._proc.start()
        child.close()

    def _poll_process(self) -> None:
        """Drain a finished process fit (or its corpse) into the outcome slot."""
        task = self._pending
        if task is None:
            return
        try:
            if not self._conn.poll(0):
                if self._proc.is_alive():
                    return
                raise EOFError("refit worker process died")
            kind, payload, fit_seconds = self._conn.recv()
            if kind == "ok":
                outcome = RefitOutcome(
                    True, Forecaster.from_bytes(payload), task, fit_seconds=fit_seconds
                )
            else:
                outcome = RefitOutcome(
                    False, None, task, error=str(payload), fit_seconds=fit_seconds
                )
        except (EOFError, OSError) as exc:
            outcome = RefitOutcome(False, None, task, error=f"worker died: {exc}")
            self._proc = None  # respawned lazily on the next submit
            self._conn = None
        with self._cond:
            self._outcome = outcome
            self._pending = None
            self._cond.notify_all()

    # -- API -------------------------------------------------------------------

    @property
    def busy(self) -> bool:
        """A submitted task has not produced its outcome yet."""
        if self.backend == "process":
            self._poll_process()
        with self._lock:
            return self._pending is not None

    def submit(self, task: RefitTask) -> bool:
        """Hand a task to the worker; ``False`` if one is already in flight."""
        if self._closed:
            raise RuntimeError("AsyncRefitEngine is closed")
        if self.backend == "process":
            self._poll_process()
            with self._lock:
                if self._pending is not None or self._outcome is not None:
                    return False
                self._pending = task
            self._ensure_process()
            try:
                self._conn.send(("fit", pickle.dumps(task, pickle.HIGHEST_PROTOCOL)))
            except (BrokenPipeError, OSError) as exc:
                with self._cond:
                    self._outcome = RefitOutcome(
                        False, None, task, error=f"worker pipe broken: {exc}"
                    )
                    self._pending = None
                self._proc = None
                self._conn = None
            return True
        with self._cond:
            if self._pending is not None or self._outcome is not None:
                return False
            self._pending = task
            self._cond.notify_all()
        self._ensure_thread()
        return True

    def poll(self) -> RefitOutcome | None:
        """Collect a finished fit, if any — non-blocking, the serving-path call."""
        if self.backend == "process":
            self._poll_process()
        with self._lock:
            outcome = self._outcome
            self._outcome = None
            return outcome

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the in-flight fit (if any) completes; ``True`` if idle."""
        deadline = None if timeout is None else time.perf_counter() + timeout
        if self.backend == "process":
            while True:
                self._poll_process()
                with self._lock:
                    if self._pending is None:
                        return True
                if deadline is not None and time.perf_counter() >= deadline:
                    return False
                time.sleep(0.002)
        with self._cond:
            while self._pending is not None:
                remaining = None if deadline is None else deadline - time.perf_counter()
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(remaining)
            return True

    def pending_task(self) -> RefitTask | None:
        """The task not yet adopted by the caller (for checkpointing)."""
        with self._lock:
            if self._pending is not None:
                return self._pending
            if self._outcome is not None:
                return self._outcome.task
            return None

    def close(self) -> None:
        """Stop the worker; in-flight work is abandoned."""
        if self._closed:
            return
        self._closed = True
        with self._cond:
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self._proc is not None:
            try:
                self._conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
            self._proc.join(timeout=5.0)
            if self._proc.is_alive():  # pragma: no cover - stuck worker
                self._proc.terminate()
            self._conn.close()
            self._proc = None
            self._conn = None

    def __enter__(self) -> "AsyncRefitEngine":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
