"""Fleet-scale micro-batched serving: one model forward for N streams.

:class:`~repro.streaming.online.OnlinePredictor` runs a Python-level
gate -> buffer -> predict loop *per record*. That is fine for one
container, but the paper's setting is a cluster: thousands of
containers/machines all sampled on the same 10 s clock. At that scale
the per-record Python overhead — not the model — dominates serving cost
(cf. esDNN and the pruned-GRU online predictor in PAPERS.md, which both
frame cloud-scale prediction as a per-host inference-cost problem).

:class:`FleetPredictor` multiplexes N independent streams over shared
model state and processes one *tick* (one record per stream) at a time:

* the whole ``(N, F)`` tick is gated at once by a vectorized
  :class:`~repro.streaming.resilience.FleetGate` (per-stream Welford
  moments, verdicts and counters preserved exactly);
* per-stream histories live in one
  :class:`~repro.streaming.buffer.MatrixRingBuffer` — a tick appends
  with one fancy-indexed write, and the due windows of all streams
  gather into a single ``(B, window, F)`` batch;
* prediction is **micro-batched**: one supervised ``model.predict``
  call (under the nn substrate's no-grad inference path) serves every
  due stream, and the results scatter back into per-stream statistics,
  health and drift state;
* refits are **coalesced and staggered**: streams share one forecaster
  fitted on windows pooled from a bounded, round-robin sample of stream
  buffers, so a refit costs O(sample) instead of O(N) and a drift storm
  across the fleet cannot stall serving;
* with ``refit_mode="async"`` the pooled fit itself leaves the serving
  path: an :class:`~repro.streaming.refit.AsyncRefitEngine` fits a fresh
  model on a background worker and the serving thread adopts it at the
  start of a later tick by **atomic weight swap** — the tick that
  triggers a refit only pools and submits, so refit ticks stop paying
  the fit cost (the p99 stall ROADMAP item 3 targets). Every tick
  carries the live ``model_version`` and obs tracks staleness, refit
  lag and swap counts;
* the whole fleet checkpoints to one crash-safe artifact via
  :mod:`repro.streaming.checkpoint`.

**Exactness contract:** with ``n_streams=1`` every emitted record —
prediction, error, health, gate verdict — is bit-identical to
:class:`OnlinePredictor` fed the same stream, including after a
checkpoint/restore mid-stream (asserted in
``tests/streaming/test_fleet.py``). With N > 1 the semantics
deliberately generalize: the refit clock is fleet-global (a tick in
which at least one stream absorbed advances it), the model is shared,
and a tick is a uniformly shaped matrix (absent streams are all-NaN
rows, quarantined as ``"empty"``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

import numpy as np

from ..models.base import Forecaster, create_forecaster
from ..obs import trace
from ..obs.registry import Gauge as MetricGauge
from ..obs.registry import Histogram as MetricHistogram
from ..obs.registry import MetricRegistry, get_registry, is_enabled, log_buckets
from .buffer import MatrixRingBuffer
from .checkpoint import CheckpointError, read_checkpoint, write_checkpoint
from .drift import PageHinkley
from .online import _HEALTH_LEVEL, PredictionRecord
from .refit import AsyncRefitEngine, RefitTask
from .resilience import (
    GATE_QUARANTINE,
    GatePolicy,
    HealthStatus,
    FleetGate,
    Supervisor,
    SupervisorPolicy,
)

__all__ = ["FleetPredictor", "FleetTick", "TickColumns"]

#: health-gauge level -> HealthStatus (inverse of online._HEALTH_LEVEL)
_HEALTH_BY_LEVEL = {level: status for status, level in _HEALTH_LEVEL.items()}
#: gate action code -> the ``gated`` field of :class:`PredictionRecord`
_GATED_BY_ACTION = (None, "imputed", "quarantined")


@dataclass(frozen=True)
class FleetTick:
    """Columnar outcome of one fleet tick (all N streams at once).

    The serving hot path never materializes per-stream objects — arrays
    in, arrays out. :meth:`record` / :meth:`records` convert to
    :class:`~repro.streaming.online.PredictionRecord` for consumers
    (and the parity tests) that want the scalar view.
    """

    step: int
    predictions: np.ndarray  #: (N,) float — NaN where no prediction was served
    actuals: np.ndarray  #: (N,) float — gated target values (raw if quarantined)
    errors: np.ndarray  #: (N,) float — NaN where no prediction was served
    refit: bool  #: the serving model changed this tick (in-line refit or async swap)
    drift: np.ndarray  #: (N,) bool — stream's drift detector fired this tick
    health: np.ndarray  #: (N,) uint8 — 0 healthy / 1 degraded / 2 fallback / 3 recovering (sharded)
    gated: np.ndarray  #: (N,) int8 — gate action codes (accept/impute/quarantine)
    #: primary-model version that served this tick (0 = no model yet;
    #: sharded fleets report the minimum across live shards)
    model_version: int = 0

    @property
    def n_streams(self) -> int:
        return len(self.predictions)

    @property
    def served(self) -> np.ndarray:
        """Mask of streams that received a prediction this tick."""
        return np.isfinite(self.predictions)

    def record(self, stream: int) -> PredictionRecord:
        """Materialize one stream's scalar :class:`PredictionRecord`."""
        pred = self.predictions[stream]
        err = self.errors[stream]
        return PredictionRecord(
            step=self.step,
            prediction=float(pred) if np.isfinite(pred) else None,
            actual=float(self.actuals[stream]),
            error=float(err) if np.isfinite(err) else None,
            refit=self.refit,
            drift=bool(self.drift[stream]),
            health=_HEALTH_BY_LEVEL[int(self.health[stream])],
            gated=_GATED_BY_ACTION[int(self.gated[stream])],
        )

    def records(self) -> list[PredictionRecord]:
        return [self.record(i) for i in range(self.n_streams)]


@dataclass
class TickColumns:
    """Mutable columnar staging area for composing one :class:`FleetTick`.

    The sharded coordinator harvests live rows out of a shared-memory
    bank, then overlays the rows of shards that could not serve —
    quarantined shards go NaN, recovering shards hold their last served
    prediction — and finishes into an immutable :class:`FleetTick`. The
    overlay arithmetic lives here so the barrier and pipelined fan-in
    paths compose ticks through literally the same code.
    """

    predictions: np.ndarray
    actuals: np.ndarray
    errors: np.ndarray
    drift: np.ndarray
    health: np.ndarray
    gated: np.ndarray

    @classmethod
    def harvest(
        cls,
        predictions: np.ndarray,
        actuals: np.ndarray,
        errors: np.ndarray,
        drift: np.ndarray,
        health: np.ndarray,
        gated: np.ndarray,
    ) -> "TickColumns":
        """Copy the six columnar outputs out of (possibly shared) storage."""
        return cls(
            predictions=np.array(predictions),
            actuals=np.array(actuals),
            errors=np.array(errors),
            drift=np.array(drift),
            health=np.array(health),
            gated=np.array(gated),
        )

    def quarantine_rows(
        self, sl: slice, raw_target: np.ndarray, *, health_level: int, gate_action: int
    ) -> None:
        """Rows of a durably-dead shard: NaN predictions, raw actuals."""
        self.predictions[sl] = np.nan
        self.errors[sl] = np.nan
        self.actuals[sl] = raw_target
        self.drift[sl] = False
        self.health[sl] = health_level
        self.gated[sl] = gate_action

    def hold_rows(
        self,
        sl: slice,
        raw_target: np.ndarray,
        held: np.ndarray,
        *,
        health_level: int,
        gate_action: int,
    ) -> None:
        """Rows of a recovering shard: serve the held last prediction."""
        self.predictions[sl] = held
        self.actuals[sl] = raw_target
        self.errors[sl] = np.abs(held - raw_target)
        self.drift[sl] = False
        self.health[sl] = health_level
        self.gated[sl] = gate_action

    def finish(self, step: int, refit: bool, model_version: int) -> FleetTick:
        return FleetTick(
            step=step,
            predictions=self.predictions,
            actuals=self.actuals,
            errors=self.errors,
            refit=refit,
            drift=self.drift,
            health=self.health,
            gated=self.gated,
            model_version=model_version,
        )


class _FleetPageHinkley:
    """Page-Hinkley drift test vectorized across N error streams.

    Elementwise identical arithmetic to
    :class:`~repro.streaming.drift.PageHinkley`, state held as ``(N,)``
    arrays; only streams selected by the update mask advance.
    """

    def __init__(
        self, streams: int, delta: float, threshold: float, min_instances: int
    ) -> None:
        self.delta = delta
        self.threshold = threshold
        self.min_instances = min_instances
        self.streams = streams
        self.n_seen = np.zeros(streams, dtype=np.int64)
        self.drift_detected = np.zeros(streams, dtype=bool)
        self._mean = np.zeros(streams)
        self._cumulative = np.zeros(streams)
        self._minimum = np.zeros(streams)

    @classmethod
    def from_prototype(cls, proto: PageHinkley, streams: int) -> "_FleetPageHinkley":
        return cls(streams, proto.delta, proto.threshold, proto.min_instances)

    def update(self, values: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Advance masked streams by one observation; return the fired mask."""
        fired = np.zeros(self.streams, dtype=bool)
        idx = np.flatnonzero(mask)
        if idx.size == 0:
            return fired
        v = values[idx]
        self.n_seen[idx] += 1
        self._mean[idx] += (v - self._mean[idx]) / self.n_seen[idx]
        self._cumulative[idx] += v - self._mean[idx] - self.delta
        self._minimum[idx] = np.minimum(self._minimum[idx], self._cumulative[idx])
        fired[idx] = (self.n_seen[idx] >= self.min_instances) & (
            self._cumulative[idx] - self._minimum[idx] > self.threshold
        )
        self.drift_detected |= fired
        return fired

    def reset(self, mask: np.ndarray) -> None:
        idx = np.flatnonzero(mask)
        if idx.size == 0:
            return
        self.n_seen[idx] = 0
        self.drift_detected[idx] = False
        self._mean[idx] = 0.0
        self._cumulative[idx] = 0.0
        self._minimum[idx] = 0.0

    def state_dict(self) -> dict:
        return {
            "n_seen": self.n_seen.copy(),
            "drift_detected": self.drift_detected.copy(),
            "mean": self._mean.copy(),
            "cumulative": self._cumulative.copy(),
            "minimum": self._minimum.copy(),
        }

    def load_state_dict(self, state: dict) -> None:
        self.n_seen[...] = state["n_seen"]
        self.drift_detected[...] = state["drift_detected"]
        self._mean[...] = state["mean"]
        self._cumulative[...] = state["cumulative"]
        self._minimum[...] = state["minimum"]


class _FleetStats:
    """Per-stream serving statistics as ``(N,)`` arrays + fleet totals."""

    _ARRAYS = (
        "n_predictions",
        "n_drifts",
        "n_predict_failures",
        "n_fallback_predictions",
        "n_fallback_predict_failures",
        "n_clamped_predictions",
    )

    def __init__(self, streams: int, error_history: int = 512) -> None:
        self.streams = streams
        self.error_history = error_history
        self.n_predictions = np.zeros(streams, dtype=np.int64)
        self.sum_abs_error = np.zeros(streams)
        self.sum_sq_error = np.zeros(streams)
        self.n_drifts = np.zeros(streams, dtype=np.int64)
        self.n_predict_failures = np.zeros(streams, dtype=np.int64)
        self.n_fallback_predictions = np.zeros(streams, dtype=np.int64)
        self.n_fallback_predict_failures = np.zeros(streams, dtype=np.int64)
        self.n_clamped_predictions = np.zeros(streams, dtype=np.int64)
        #: fleet-wide (the model is shared, so refits are not per-stream)
        self.n_refits = 0
        self.n_refit_failures = 0
        #: async mode: refit triggers that found a background fit in flight
        self.n_refits_deferred = 0
        #: running fleet totals mirrored at the mutation sites so the
        #: per-tick obs wrapper reads O(1) ints instead of summing the
        #: per-stream arrays (4 O(N) scans/tick — the N=1 bench killer)
        self.total_fallback_predictions = 0
        self.total_clamped_predictions = 0
        self.errors = MatrixRingBuffer(streams, error_history, 1)

    @property
    def mae(self) -> np.ndarray:
        """Per-stream online MAE."""
        return self.sum_abs_error / np.maximum(self.n_predictions, 1)

    @property
    def mse(self) -> np.ndarray:
        """Per-stream online MSE."""
        return self.sum_sq_error / np.maximum(self.n_predictions, 1)

    @property
    def fleet_mae(self) -> float:
        """MAE over every prediction the fleet served."""
        return float(self.sum_abs_error.sum() / max(self.n_predictions.sum(), 1))

    def recent_errors(self, stream: int) -> np.ndarray:
        """The retained error history of one stream, oldest first."""
        return self.errors.view(stream)[:, 0]

    def error_quantiles(self, tau: float, min_count: int = 1) -> np.ndarray:
        """Per-stream ``tau``-quantile of the retained |error| history.

        One vectorized nanquantile over the whole fleet's error ring;
        NaN for streams that have scored fewer than ``min_count``
        predictions — a tail quantile of a handful of (possibly lucky)
        errors is an uncalibrated band, and consumers treat NaN as
        "fall back to your fixed margin". This is the empirical residual
        band that risk-aware consumers (the cluster autoscaler's quantile
        policy) reserve on top of a point forecast.
        """
        if not 0.0 < tau < 1.0:
            raise ValueError(f"tau must be in (0, 1), got {tau}")
        if min_count < 1:
            raise ValueError(f"min_count must be >= 1, got {min_count}")
        out = np.full(self.streams, np.nan)
        idx = np.flatnonzero(self.errors.sizes >= min_count)
        if idx.size:
            retained = self.errors.filled_matrix()[idx, :, 0]
            out[idx] = np.nanquantile(retained, tau, axis=1)
        return out

    def state_dict(self) -> dict:
        state = {name: getattr(self, name).copy() for name in self._ARRAYS}
        state["sum_abs_error"] = self.sum_abs_error.copy()
        state["sum_sq_error"] = self.sum_sq_error.copy()
        state["n_refits"] = self.n_refits
        state["n_refit_failures"] = self.n_refit_failures
        state["n_refits_deferred"] = self.n_refits_deferred
        state["errors"] = self.errors.state_dict()
        return state

    def load_state_dict(self, state: dict) -> None:
        for name in self._ARRAYS:
            getattr(self, name)[...] = state[name]
        self.sum_abs_error[...] = state["sum_abs_error"]
        self.sum_sq_error[...] = state["sum_sq_error"]
        self.n_refits = int(state["n_refits"])
        self.n_refit_failures = int(state["n_refit_failures"])
        self.n_refits_deferred = int(state.get("n_refits_deferred", 0))
        self.total_fallback_predictions = int(self.n_fallback_predictions.sum())
        self.total_clamped_predictions = int(self.n_clamped_predictions.sum())
        self.errors.load_state_dict(state["errors"])


class FleetPredictor:
    """Serve one-step-ahead predictions for N streams per shared forward.

    Parameters mirror :class:`~repro.streaming.online.OnlinePredictor`
    (so a fleet of one is a drop-in, bit-identical replacement), plus:

    n_streams:
        Number of multiplexed streams; each tick carries one record per
        stream as an ``(n_streams, features)`` matrix (or ``(n_streams,)``
        when ``features == 1``). A stream with nothing to report this
        tick is an all-NaN row.
    detector:
        A :class:`~repro.streaming.drift.PageHinkley` *prototype*; its
        parameters are applied to every stream's vectorized detector
        state. (Arbitrary :class:`DriftDetector` subclasses are a
        scalar-predictor feature — the fleet keeps detector state in
        arrays.)
    refit_streams:
        How many stream buffers contribute windows to one shared-model
        (re)fit. Sampling is round-robin across refits, so successive
        refits stagger through the fleet instead of re-reading the same
        histories; fit cost is O(refit_streams), never O(N).
    max_fit_windows:
        Hard cap on the pooled training-set size per refit (the most
        recent windows win) — the per-tick refit budget that keeps a
        drift storm from stalling serving.
    refit_mode:
        ``"sync"`` (default, the PR-5 behavior: pooled refits run
        in-line with the triggering tick) or ``"async"``: the trigger
        tick only pools windows and submits them to a background
        :class:`~repro.streaming.refit.AsyncRefitEngine`; the fitted
        model is adopted by atomic swap at the start of a later tick,
        so no tick ever blocks on a fit. One refit is in flight at a
        time — triggers that land while the worker is busy are deferred
        to the next tick (counted in
        ``serving_fleet_refits_deferred_total``), so the effective
        cadence degrades gracefully to ``max(refit_interval, fit_time)``.
    refit_backend:
        Async worker flavor: ``"thread"`` (default — numpy kernels
        release the GIL, so the fit overlaps serving on multicore) or
        ``"process"`` (a persistent spawned process: full isolation at
        the cost of one task/model pickle per refit).
    warm_start:
        Async mode only: ship the current model's weights with each
        task so models implementing :meth:`Forecaster.warm_fit` resume
        training instead of refitting from scratch (the worker resumes
        a *copy*; the live model is never touched off-thread).
    warm_epochs:
        Epoch budget for warm-started resumes (``None`` = the model's
        default, a quarter of its cold budget).
    error_history:
        Per-stream retained error-ring length (the fleet ring is always
        bounded; there is no opt-out at fleet scale).
    """

    def __init__(
        self,
        n_streams: int,
        forecaster_name: str = "xgboost",
        forecaster_kwargs: dict[str, Any] | None = None,
        window: int = 12,
        buffer_capacity: int = 600,
        refit_interval: int = 100,
        min_fit_size: int | None = None,
        target_col: int = 0,
        features: int = 1,
        detector: PageHinkley | None = None,
        serve_dtype: np.dtype | type = np.float64,
        gate_policy: GatePolicy | None = None,
        supervisor_policy: SupervisorPolicy | None = None,
        fallback_forecaster: str = "persistence",
        fallback_kwargs: dict[str, Any] | None = None,
        error_history: int = 512,
        refit_fault_hook: Callable[[], None] | None = None,
        registry: MetricRegistry | None = None,
        span_sample: int = 8,
        refit_streams: int = 8,
        max_fit_windows: int = 4096,
        refit_mode: str = "sync",
        refit_backend: str = "thread",
        warm_start: bool = False,
        warm_epochs: int | None = None,
    ) -> None:
        if n_streams < 1:
            raise ValueError(f"n_streams must be >= 1, got {n_streams}")
        if span_sample < 1:
            raise ValueError(f"span_sample must be >= 1, got {span_sample}")
        if buffer_capacity < window + 2:
            raise ValueError(
                f"buffer_capacity ({buffer_capacity}) must exceed window+1 ({window + 1})"
            )
        if refit_interval < 1:
            raise ValueError(f"refit_interval must be >= 1, got {refit_interval}")
        if refit_streams < 1 or max_fit_windows < 1:
            raise ValueError("refit_streams and max_fit_windows must be >= 1")
        if refit_mode not in ("sync", "async"):
            raise ValueError(f"refit_mode must be 'sync' or 'async', got {refit_mode!r}")
        if refit_backend not in ("thread", "process"):
            raise ValueError(
                f"refit_backend must be 'thread' or 'process', got {refit_backend!r}"
            )
        if warm_epochs is not None and warm_epochs < 1:
            raise ValueError(f"warm_epochs must be >= 1, got {warm_epochs}")
        if detector is not None and type(detector) is not PageHinkley:
            raise TypeError(
                "FleetPredictor vectorizes PageHinkley detector state; "
                f"got {type(detector).__name__} (use OnlinePredictor for "
                "custom detectors)"
            )
        self.n_streams = n_streams
        self.forecaster_name = forecaster_name
        self.forecaster_kwargs = dict(forecaster_kwargs or {})
        self.forecaster_kwargs.setdefault("target_col", target_col)
        self.window = window
        self.refit_interval = refit_interval
        self.min_fit_size = min_fit_size if min_fit_size is not None else 3 * window
        self.target_col = target_col
        self.refit_streams = refit_streams
        self.max_fit_windows = max_fit_windows
        self.buffer = MatrixRingBuffer(n_streams, buffer_capacity, features)
        proto = detector if detector is not None else PageHinkley()
        self._detector_params = {
            "delta": proto.delta,
            "threshold": proto.threshold,
            "min_instances": proto.min_instances,
        }
        self.detector = _FleetPageHinkley.from_prototype(proto, n_streams)
        obs_registry = get_registry(registry)
        self.gate = FleetGate(n_streams, features, gate_policy, registry=obs_registry)
        self.refit_supervisor = Supervisor(supervisor_policy, duty="refit", registry=obs_registry)
        # predictions: same budget envelope, but no retries (see OnlinePredictor)
        predict_policy = supervisor_policy or SupervisorPolicy()
        self.predict_supervisor = Supervisor(
            SupervisorPolicy(
                max_retries=0,
                backoff_base=0.0,
                time_budget=predict_policy.time_budget,
                fallback_after=predict_policy.fallback_after,
            ),
            duty="predict",
            registry=obs_registry,
        )
        # fleet telemetry: tick latency, forward batch size, throughput
        self._h_latency = MetricHistogram(
            "serving_fleet_tick_seconds",
            "per-tick fleet serving latency (all streams)",
            buckets=log_buckets(1e-6, 10.0),
        )
        self._h_batch = MetricHistogram(
            "serving_fleet_batch_size",
            "streams served per micro-batched model forward",
            buckets=log_buckets(1.0, 65536.0),
        )
        self._g_throughput = MetricGauge(
            "serving_fleet_records_per_sec", "instantaneous fleet serving throughput"
        )
        self._g_health = MetricGauge(
            "serving_fleet_health_state", "0=healthy 1=degraded 2=fallback"
        )
        self._obs_counters = {
            name: obs_registry.counter(f"serving_fleet_{name}_total", help)
            for name, help in (
                ("records", "records offered to the fleet"),
                ("predictions", "predictions served"),
                ("refits", "successful shared-model refits"),
                ("refit_failures", "terminally failed shared-model refits"),
                ("drift_events", "per-stream drift detector firings"),
                ("fallback_predictions", "predictions served by the fallback"),
                ("clamped_predictions", "predictions clamped into the plausibility band"),
                ("async_swaps", "background fits adopted by atomic weight swap"),
                ("refits_deferred", "refit triggers deferred: a background fit was in flight"),
            )
        }
        # async-refit telemetry: live version, staleness, submit->swap lag,
        # off-path fit cost (these make the swap protocol observable)
        self._g_version = MetricGauge(
            "serving_fleet_model_version", "live shared-model version (0 = no model yet)"
        )
        self._g_staleness = MetricGauge(
            "serving_fleet_model_staleness_ticks",
            "ticks elapsed since the live model's training pool was drawn",
        )
        self._h_refit_lag = MetricHistogram(
            "serving_fleet_refit_lag_ticks",
            "ticks between refit submission and the adopting weight swap",
            buckets=log_buckets(1.0, 4096.0),
        )
        self._h_fit_seconds = MetricHistogram(
            "serving_fleet_refit_fit_seconds",
            "background fit duration (spent off the serving path)",
            buckets=log_buckets(1e-4, 600.0),
        )
        for inst in (
            self._h_latency,
            self._h_batch,
            self._g_throughput,
            self._g_health,
            self._g_version,
            self._g_staleness,
            self._h_refit_lag,
            self._h_fit_seconds,
        ):
            obs_registry.register(inst)
        self._last_health_level: int | None = None
        self._span_sample = span_sample
        self._span_tick = 0
        self.fallback_forecaster = fallback_forecaster
        self.fallback_kwargs = dict(fallback_kwargs or {})
        self.fallback_kwargs.setdefault("target_col", target_col)
        self.refit_fault_hook = refit_fault_hook
        self.model: Forecaster | None = None
        self.fallback_model: Forecaster | None = None
        self.on_fallback = False
        self.error_history = error_history
        self.stats = _FleetStats(n_streams, error_history)
        self.refit_mode = refit_mode
        self.refit_backend = refit_backend
        self.warm_start = bool(warm_start)
        self.warm_epochs = warm_epochs
        #: bumps on every adopted primary model (in-line refit or async swap)
        self.model_version = 0
        #: fleet step whose pooled windows trained the live model (-1 = none)
        self._model_step = -1
        # the engine spawns its worker lazily on first submit, so sync-mode
        # fleets (and async ones that never refit) pay nothing here
        self.refit_engine: AsyncRefitEngine | None = (
            AsyncRefitEngine(refit_backend) if refit_mode == "async" else None
        )
        self._step = 0
        self._since_refit = 0
        self._refit_cursor = 0
        self._serve_dtype = np.dtype(serve_dtype)
        # preallocated (n_streams, window, features) inference batch —
        # each tick's due windows gather into its leading rows in place
        self._batch = np.empty((n_streams, window, features), dtype=self._serve_dtype)
        self._last_batch_size = 0
        self._last_n_served = 0

    # -- health ---------------------------------------------------------------

    @property
    def health(self) -> HealthStatus:
        """Current fleet-wide serving health (per-stream fallback overrides)."""
        if self.on_fallback:
            return HealthStatus.FALLBACK
        if (
            self.refit_supervisor.consecutive_failures > 0
            or self.predict_supervisor.consecutive_failures > 0
        ):
            return HealthStatus.DEGRADED
        return HealthStatus.HEALTHY

    # -- internals -------------------------------------------------------------

    def _fit_pool(self) -> tuple[np.ndarray, np.ndarray]:
        """Training windows pooled from a staggered sample of stream buffers.

        Round-robin over the streams with enough history: each refit
        starts where the previous one stopped, so over successive refits
        the shared model sees the whole fleet while any single refit
        reads at most ``refit_streams`` buffers / ``max_fit_windows``
        windows.
        """
        from ..data.windowing import make_windows

        sizes = self.buffer.sizes
        viable = np.flatnonzero(sizes >= self.window + 1)
        if viable.size == 0:
            # same failure mode as the scalar predictor fitting a short
            # buffer: raise, and let the supervisor count it
            raise ValueError(
                f"no stream holds the >= {self.window + 1} records needed "
                "to build a training window"
            )
        k = min(int(viable.size), self.refit_streams)
        start = self._refit_cursor % viable.size
        pick = viable[(start + np.arange(k)) % viable.size]
        self._refit_cursor += k
        xs, ys = [], []
        budget = self.max_fit_windows
        for s in pick:
            data = self.buffer.view(int(s))
            x, y = make_windows(data, data[:, self.target_col], self.window, horizon=1)
            if len(x) > budget:
                x, y = x[-budget:], y[-budget:]
            xs.append(x)
            ys.append(y)
            budget -= len(x)
            if budget <= 0:
                break
        if len(xs) == 1:
            return xs[0], ys[0]
        return np.concatenate(xs), np.concatenate(ys)

    def _fit_fallback(self) -> None:
        """Fit the fallback forecaster on the pool (guarded, never raises)."""
        try:
            x, y = self._fit_pool()
            model = create_forecaster(self.fallback_forecaster, **self.fallback_kwargs)
            model.fit(x, y)
            self.fallback_model = model
        except Exception:  # noqa: BLE001 — last line of defence stays up
            pass

    def _refit(self) -> bool:
        """Supervised shared-model refit; on terminal failure degrade."""

        def attempt() -> Forecaster:
            if self.refit_fault_hook is not None:
                self.refit_fault_hook()
            x, y = self._fit_pool()
            model = create_forecaster(self.forecaster_name, **self.forecaster_kwargs)
            model.fit(x, y)
            return model

        # the clock resets when the attempt *starts*, not after it returns:
        # anything escaping the supervisor (it only catches Exception, so a
        # BaseException from the fit propagates) must not leave the
        # ``scheduled`` trigger armed, or every subsequent tick re-fires a
        # refit — async mode resets at submission for the same reason
        self._since_refit = 0
        ok, model = self.refit_supervisor.run(attempt)
        if ok:
            self.model = model
            self.model_version += 1
            self._model_step = self._step
            self.on_fallback = False
            self.stats.n_refits += 1
            return True
        self.stats.n_refit_failures += 1
        if self.model is None or self.refit_supervisor.should_fall_back:
            self._fit_fallback()
            if self.fallback_model is not None:
                self.on_fallback = True
        return False

    def _schedule_refit(self) -> bool:
        """Async-mode refit trigger: pool windows, submit to the engine.

        Returns ``True`` iff an attempt *started* (task submitted, or
        pooling/fault-hook failed and was counted) — mirroring what one
        supervised in-line attempt would have done to the clock, the
        failure streak and the drift detector. A busy engine defers the
        trigger instead, *without* resetting the refit clock, so it
        re-arms next tick and the effective cadence degrades to
        ``max(refit_interval, fit_time)``.
        """
        engine = self.refit_engine
        assert engine is not None
        if engine.busy:
            self.stats.n_refits_deferred += 1
            self._obs_counters["refits_deferred"].inc()
            return False
        self._since_refit = 0  # attempt starts now — same clock as sync mode
        try:
            if self.refit_fault_hook is not None:
                self.refit_fault_hook()
            x, y = self._fit_pool()
        except Exception as exc:  # noqa: BLE001 — mirror the supervised attempt
            self.refit_supervisor.record(False, f"{type(exc).__name__}: {exc}")
            self.stats.n_refit_failures += 1
            if self.model is None or self.refit_supervisor.should_fall_back:
                self._fit_fallback()
                if self.fallback_model is not None:
                    self.on_fallback = True
            return True
        warm = None
        if (
            self.warm_start
            and self.model is not None
            and getattr(self.model, "supports_warm_fit", False)
        ):
            warm = self.model.to_bytes()
        engine.submit(
            RefitTask(
                self.forecaster_name,
                dict(self.forecaster_kwargs),
                x,
                y,
                warm_state=warm,
                warm_epochs=self.warm_epochs,
                step=self._step,
            )
        )
        return True

    def _poll_async_refit(self) -> bool:
        """Adopt a finished background fit; ``True`` iff the model swapped.

        The swap is one reference assignment of a fully fitted model the
        serving thread has never seen — readers observe the old model or
        the new one, never a torn mix. Failures land with the same
        bookkeeping as a failed in-line refit.
        """
        engine = self.refit_engine
        assert engine is not None
        outcome = engine.poll()
        if outcome is None:
            return False
        if outcome.ok:
            self.refit_supervisor.record(True)
            self.model = outcome.model
            self.model_version += 1
            self._model_step = outcome.task.step
            self.on_fallback = False
            self.stats.n_refits += 1
            self._obs_counters["async_swaps"].inc()
            self._h_refit_lag.observe(float(self._step - outcome.task.step))
            self._h_fit_seconds.observe(outcome.fit_seconds)
            return True
        self.refit_supervisor.record(False, outcome.error)
        self.stats.n_refit_failures += 1
        if self.model is None or self.refit_supervisor.should_fall_back:
            self._fit_fallback()
            if self.fallback_model is not None:
                self.on_fallback = True
        return False

    def _sanitize(self, predictions: np.ndarray, served: np.ndarray) -> None:
        """Vectorized output guard over the streams that were just served.

        Mirrors ``OnlinePredictor._sanitize_prediction``: non-finite
        forecasts are dropped (and counted as predict failures), finite
        ones are clamped into each stream's plausibility band.
        """
        vals = predictions[served]
        bad = ~np.isfinite(vals)
        if bad.any():
            self.stats.n_predict_failures[served[bad]] += 1
            predictions[served[bad]] = np.nan
        sigma = self.gate.policy.prediction_sigma
        if sigma is None:
            return
        lo, hi, armed = self.gate.band(sigma)
        vals = predictions[served]
        lo_t = lo[served, self.target_col]
        hi_t = hi[served, self.target_col]
        wild = armed[served] & np.isfinite(vals) & ((vals < lo_t) | (vals > hi_t))
        if wild.any():
            self.stats.n_clamped_predictions[served[wild]] += 1
            self.stats.total_clamped_predictions += int(np.count_nonzero(wild))
            predictions[served[wild]] = np.clip(
                vals[wild], lo_t[wild], hi_t[wild]
            )

    # -- API -------------------------------------------------------------------

    def process_tick(self, tick: np.ndarray) -> FleetTick:
        """One fleet step: gate, micro-batch predict, absorb, maybe refit.

        ``tick`` is ``(n_streams, features)`` (or ``(n_streams,)`` for
        univariate fleets) — one record per stream, NaN rows for absent
        streams. When observability is enabled the tick's latency,
        forward batch size and instantaneous throughput land in the
        fleet instruments, and every ``span_sample``-th tick runs inside
        a ``serving.fleet_tick`` trace span.
        """
        if not is_enabled():
            return self._process_tick_inner(tick)
        st = self.stats
        b_refits = st.n_refits
        b_refit_failures = st.n_refit_failures
        b_fallback = st.total_fallback_predictions
        b_clamped = st.total_clamped_predictions
        t0 = time.perf_counter()
        self._span_tick += 1
        if self._span_tick >= self._span_sample:
            self._span_tick = 0
            with trace.span("serving.fleet_tick") as sp:
                result = self._process_tick_inner(tick)
                sp.add("streams", self.n_streams)
        else:
            result = self._process_tick_inner(tick)
        elapsed = time.perf_counter() - t0
        self._h_latency.observe(elapsed)
        self._h_batch.observe(self._last_batch_size)
        if elapsed > 0:
            self._g_throughput.set(self.n_streams / elapsed)
        counters = self._obs_counters
        counters["records"].inc(self.n_streams)
        n_served = self._last_n_served
        if n_served:
            counters["predictions"].inc(n_served)
        level = _HEALTH_LEVEL[self.health]
        if level != self._last_health_level:
            self._last_health_level = level
            self._g_health.set(level)
        self._g_version.set(float(self.model_version))
        self._g_staleness.set(
            float(self._step - self._model_step) if self.model is not None else 0.0
        )
        if st.n_refits != b_refits:
            counters["refits"].inc(st.n_refits - b_refits)
        if st.n_refit_failures != b_refit_failures:
            counters["refit_failures"].inc(st.n_refit_failures - b_refit_failures)
        n_drift = int(result.drift.sum())
        if n_drift:
            counters["drift_events"].inc(n_drift)
        fallback = st.total_fallback_predictions - b_fallback
        if fallback:
            counters["fallback_predictions"].inc(fallback)
        clamped = st.total_clamped_predictions - b_clamped
        if clamped:
            counters["clamped_predictions"].inc(clamped)
        return result

    def _process_tick_inner(self, tick: np.ndarray) -> FleetTick:
        arr = np.asarray(tick, float)
        if arr.ndim == 1 and self.buffer.features == 1:
            arr = arr[:, None]
        if arr.shape != (self.n_streams, self.buffer.features):
            raise ValueError(
                f"expected tick of shape ({self.n_streams}, {self.buffer.features}), "
                f"got {arr.shape}"
            )
        st = self.stats
        # async mode: adopt a finished background fit *before* predicting, so
        # the freshest completed model serves this tick — with a fit that
        # lands within one tick gap this is exactly the sync schedule (model
        # fitted at trigger tick k serves tick k+1), which is what the
        # paced-parity tests assert
        swapped = False
        if self.refit_engine is not None:
            swapped = self._poll_async_refit()
        gated = self.gate.check_tick(arr)
        accepted = gated.actions != GATE_QUARANTINE
        # quarantined rows report their *raw* target (possibly NaN), accepted
        # rows the repaired one — exactly the scalar predictor's bookkeeping
        actuals = np.where(accepted, gated.records[:, self.target_col], arr[:, self.target_col])

        # -- micro-batched prediction (prequential: before absorbing the tick)
        predictions = np.full(self.n_streams, np.nan)
        used_fallback = np.zeros(self.n_streams, dtype=bool)
        self._last_batch_size = 0
        due = accepted & (self.buffer.sizes >= self.window)
        serving = self.fallback_model if self.on_fallback else self.model
        if serving is not None and due.any():
            idx = np.flatnonzero(due)
            self._last_batch_size = int(idx.size)
            batch = self.buffer.last_windows(idx, self.window, out=self._batch[: idx.size])

            def attempt() -> np.ndarray:
                return np.asarray(serving.predict(batch), float)[:, 0].copy()

            ok, values = self.predict_supervisor.run(attempt)
            fresh: np.ndarray | None = None
            if ok:
                predictions[idx] = values
                used_fallback[idx] = self.on_fallback
                fresh = idx
            else:
                st.n_predict_failures[idx] += 1
                # primary forward blew up: serve the tick from the fallback
                if not self.on_fallback:
                    if self.fallback_model is None:
                        self._fit_fallback()
                    if self.fallback_model is not None:
                        try:
                            values = np.asarray(
                                self.fallback_model.predict(batch), float
                            )[:, 0].copy()
                            predictions[idx] = values
                            used_fallback[idx] = True
                            fresh = idx
                        except Exception:  # noqa: BLE001 — the tick is lost, but counted
                            st.n_fallback_predict_failures[idx] += 1
            if fresh is not None:
                self._sanitize(predictions, fresh)
        if used_fallback.any():
            st.n_fallback_predictions[used_fallback] += 1
            st.total_fallback_predictions += int(np.count_nonzero(used_fallback))

        # -- score + drift (only streams that actually got a prediction)
        have = np.isfinite(predictions)
        self._last_n_served = int(np.count_nonzero(have))
        errors = np.full(self.n_streams, np.nan)
        if self._last_n_served:
            err = np.abs(predictions[have] - actuals[have])
            errors[have] = err
            st.n_predictions[have] += 1
            st.sum_abs_error[have] += err
            st.sum_sq_error[have] += err**2
            st.errors.append_tick(errors[:, None], mask=have)
        fired = self.detector.update(errors, have)
        st.n_drifts[fired] += 1

        # -- absorb + refit clock (a fully quarantined tick changes nothing,
        #    matching the scalar predictor's early return)
        self.buffer.append_tick(gated.records, mask=accepted)
        self._step += 1
        refit = swapped
        if accepted.any():
            self._since_refit += 1
            sizes = self.buffer.sizes
            ready = sizes >= max(self.min_fit_size, self.window + 2)
            needs_fit = (
                self.model is None
                and bool(ready.any())
                and (
                    self.refit_supervisor.consecutive_failures == 0
                    or self._since_refit >= self.refit_interval
                )
            )
            scheduled = self.model is not None and self._since_refit >= self.refit_interval
            drift_ready = fired & (sizes >= self.min_fit_size)
            if needs_fit or scheduled or bool(drift_ready.any()):
                if self.refit_engine is not None:
                    if self._schedule_refit():
                        self.detector.reset(fired)
                else:
                    refit = self._refit()
                    self.detector.reset(fired)

        health = np.full(self.n_streams, _HEALTH_LEVEL[self.health], dtype=np.uint8)
        health[used_fallback] = _HEALTH_LEVEL[HealthStatus.FALLBACK]
        return FleetTick(
            step=self._step - 1,
            predictions=predictions,
            actuals=actuals,
            errors=errors,
            refit=refit,
            drift=fired,
            health=health,
            gated=gated.actions,
            model_version=self.model_version,
        )

    def run(self, ticks: np.ndarray) -> list[FleetTick]:
        """Process a ``(T, n_streams[, features])`` tick matrix sequentially."""
        ticks = np.asarray(ticks, float)
        if ticks.ndim == 2 and self.buffer.features == 1:
            ticks = ticks[:, :, None]
        with trace.span("serving.fleet_run") as sp:
            out = [self.process_tick(t) for t in ticks]
            sp.add("ticks", len(out))
            sp.add("records", len(out) * self.n_streams)
        return out

    # -- checkpoint / restore ----------------------------------------------------

    def state_dict(self) -> dict:
        """Full fleet serving state: enough to resume every stream bit-for-bit."""
        return {
            "config": {
                "n_streams": self.n_streams,
                "forecaster_name": self.forecaster_name,
                "forecaster_kwargs": dict(self.forecaster_kwargs),
                "window": self.window,
                "buffer_capacity": self.buffer.capacity,
                "refit_interval": self.refit_interval,
                "min_fit_size": self.min_fit_size,
                "target_col": self.target_col,
                "features": self.buffer.features,
                "serve_dtype": self._serve_dtype.str,
                "detector_params": dict(self._detector_params),
                "gate_policy": self.gate.policy,
                "supervisor_policy": self.refit_supervisor.policy,
                "fallback_forecaster": self.fallback_forecaster,
                "fallback_kwargs": dict(self.fallback_kwargs),
                "error_history": self.error_history,
                "refit_streams": self.refit_streams,
                "max_fit_windows": self.max_fit_windows,
                "refit_mode": self.refit_mode,
                "refit_backend": self.refit_backend,
                "warm_start": self.warm_start,
                "warm_epochs": self.warm_epochs,
            },
            "step": self._step,
            "since_refit": self._since_refit,
            "refit_cursor": self._refit_cursor,
            "model_version": self.model_version,
            "model_step": self._model_step,
            # an in-flight (or finished-but-unadopted) background fit is
            # persisted as its *task*: restore resubmits it, so the fit it
            # would have produced still lands — restore-then-replay equals
            # the uninterrupted run (fits are seeded and deterministic)
            "pending_refit": (
                None
                if self.refit_engine is None
                or (task := self.refit_engine.pending_task()) is None
                else task.state_dict()
            ),
            "on_fallback": self.on_fallback,
            "buffer": self.buffer.state_dict(),
            "detector": self.detector.state_dict(),
            "gate": self.gate.state_dict(),
            "refit_supervisor": self.refit_supervisor.state_dict(),
            "predict_supervisor": self.predict_supervisor.state_dict(),
            "stats": self.stats.state_dict(),
            "model": None if self.model is None else self.model.to_bytes(),
            "fallback_model": (
                None if self.fallback_model is None else self.fallback_model.to_bytes()
            ),
        }

    def load_state_dict(self, state: dict) -> None:
        """Adopt a :meth:`state_dict`; the predictor must match its config."""
        cfg = state["config"]
        if (
            cfg["n_streams"] != self.n_streams
            or cfg["window"] != self.window
            or cfg["features"] != self.buffer.features
            or cfg["buffer_capacity"] != self.buffer.capacity
            or cfg["forecaster_name"] != self.forecaster_name
        ):
            raise CheckpointError(
                "checkpoint config mismatch: "
                f"saved (streams={cfg['n_streams']}, forecaster={cfg['forecaster_name']}, "
                f"window={cfg['window']}, features={cfg['features']}, "
                f"capacity={cfg['buffer_capacity']}) vs live "
                f"(streams={self.n_streams}, forecaster={self.forecaster_name}, "
                f"window={self.window}, features={self.buffer.features}, "
                f"capacity={self.buffer.capacity})"
            )
        self._step = int(state["step"])
        self._since_refit = int(state["since_refit"])
        self._refit_cursor = int(state["refit_cursor"])
        self.model_version = int(state.get("model_version", 0))
        self._model_step = int(state.get("model_step", -1))
        self.on_fallback = bool(state["on_fallback"])
        self.buffer.load_state_dict(state["buffer"])
        self.detector.load_state_dict(state["detector"])
        self.gate.load_state_dict(state["gate"])
        self.refit_supervisor.load_state_dict(state["refit_supervisor"])
        self.predict_supervisor.load_state_dict(state["predict_supervisor"])
        self.stats.load_state_dict(state["stats"])
        self.model = None if state["model"] is None else Forecaster.from_bytes(state["model"])
        self.fallback_model = (
            None
            if state["fallback_model"] is None
            else Forecaster.from_bytes(state["fallback_model"])
        )
        pending = state.get("pending_refit")
        if pending is not None and self.refit_engine is not None:
            # deterministic resume: re-run the interrupted fit on the same
            # pooled windows (a busy engine drops it — the restored refit
            # clock reschedules with fresh data, also deterministically)
            self.refit_engine.submit(RefitTask.from_state(pending))

    def close(self) -> None:
        """Release the background refit worker (no-op in sync mode).

        Safe to call repeatedly; an in-flight fit is abandoned (its task
        is recoverable from the last checkpoint). Sync-mode fleets have
        nothing to release, so existing callers need not change.
        """
        if self.refit_engine is not None:
            self.refit_engine.close()

    def save(self, path: str | Path) -> None:
        """Checkpoint the full fleet state atomically (crash-safe)."""
        write_checkpoint(path, {"kind": "fleet_predictor", "state": self.state_dict()})

    @classmethod
    def restore(cls, path: str | Path, **overrides: Any) -> "FleetPredictor":
        """Rebuild a fleet from a checkpoint and resume every stream."""
        artifact = read_checkpoint(path)
        if not isinstance(artifact, dict) or artifact.get("kind") != "fleet_predictor":
            raise CheckpointError(f"{path} does not hold a FleetPredictor checkpoint")
        state = artifact["state"]
        cfg = dict(state["config"])
        cfg["serve_dtype"] = np.dtype(cfg["serve_dtype"])
        params = cfg.pop("detector_params")
        cfg["detector"] = PageHinkley(**params)
        cfg.update(overrides)
        predictor = cls(**cfg)
        predictor.load_state_dict(state)
        return predictor
