"""Stateless differentiable operations used by :mod:`repro.nn` layers.

The heavy op here is :func:`conv1d`, implemented with an explicit
im2col gather (a strided index array) so that the convolution itself is a
single ``einsum`` contraction, and the input gradient is one
``np.add.at`` scatter — both whole-array operations with no Python-level
inner loops, per the HPC vectorization guides.
"""

from __future__ import annotations

import numpy as np

from .tensor import Tensor

__all__ = [
    "conv1d",
    "softmax",
    "log_softmax",
    "dropout",
    "spatial_dropout1d",
    "linear",
    "max_pool1d",
    "avg_pool1d",
]


# ---------------------------------------------------------------------------
# convolution
# ---------------------------------------------------------------------------


def _gather_indices(length: int, kernel_size: int, dilation: int, stride: int) -> np.ndarray:
    """Index matrix ``idx[k, t] = t * stride + k * dilation`` for im2col."""
    l_out = (length - (kernel_size - 1) * dilation - 1) // stride + 1
    if l_out <= 0:
        raise ValueError(
            f"conv1d produces empty output: length={length}, "
            f"kernel={kernel_size}, dilation={dilation}, stride={stride}"
        )
    k = np.arange(kernel_size)[:, None] * dilation
    t = np.arange(l_out)[None, :] * stride
    return k + t


def conv1d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int | tuple[int, int] = 0,
    dilation: int = 1,
) -> Tensor:
    """1-D cross-correlation (the deep-learning "convolution").

    Parameters
    ----------
    x: ``(N, C_in, L)`` input.
    weight: ``(C_out, C_in, K)`` filters.
    bias: optional ``(C_out,)``.
    padding: symmetric amount, or an explicit ``(left, right)`` pair —
        causal convolutions pad only on the left.
    """
    if isinstance(padding, tuple):
        pad_l, pad_r = padding
    else:
        pad_l = pad_r = int(padding)

    n, c_in, length = x.shape
    c_out, c_in_w, k = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"channel mismatch: input has {c_in}, weight expects {c_in_w}")

    xp = x.data
    if pad_l or pad_r:
        xp = np.pad(xp, ((0, 0), (0, 0), (pad_l, pad_r)))
    idx = _gather_indices(xp.shape[-1], k, dilation, stride)
    cols = xp[:, :, idx]  # (N, C_in, K, L_out)
    out = np.einsum("oik,nikt->not", weight.data, cols, optimize=True)
    if bias is not None:
        out = out + bias.data[None, :, None]

    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(grad: np.ndarray) -> None:
        if weight.requires_grad:
            weight._accumulate(np.einsum("not,nikt->oik", grad, cols, optimize=True))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2)))
        if x.requires_grad:
            gcols = np.einsum("oik,not->nikt", weight.data, grad, optimize=True)
            gxp = np.zeros((n, c_in, length + pad_l + pad_r))
            np.add.at(gxp, (slice(None), slice(None), idx), gcols)
            if pad_l or pad_r:
                gxp = gxp[:, :, pad_l : pad_l + length]
            x._accumulate(gxp)

    return Tensor._from_op(out, parents, backward)


# ---------------------------------------------------------------------------
# pooling
# ---------------------------------------------------------------------------


def max_pool1d(x: Tensor, kernel_size: int, stride: int | None = None) -> Tensor:
    """Max pooling over the last axis of a ``(N, C, L)`` tensor."""
    stride = stride or kernel_size
    idx = _gather_indices(x.shape[-1], kernel_size, 1, stride)
    windows = x.data[:, :, idx]  # (N, C, K, L_out)
    out = windows.max(axis=2)
    argmax = windows.argmax(axis=2)  # (N, C, L_out)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        gx = np.zeros_like(x.data)
        n, c, l_out = grad.shape
        src_pos = idx[argmax, np.arange(l_out)[None, None, :]]  # (N, C, L_out)
        ni = np.arange(n)[:, None, None]
        ci = np.arange(c)[None, :, None]
        np.add.at(gx, (ni, ci, src_pos), grad)
        x._accumulate(gx)

    return Tensor._from_op(out, (x,), backward)


def avg_pool1d(x: Tensor, kernel_size: int, stride: int | None = None) -> Tensor:
    """Average pooling over the last axis of a ``(N, C, L)`` tensor."""
    stride = stride or kernel_size
    idx = _gather_indices(x.shape[-1], kernel_size, 1, stride)
    out = x.data[:, :, idx].mean(axis=2)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        gx = np.zeros_like(x.data)
        g = np.repeat(grad[:, :, None, :] / kernel_size, kernel_size, axis=2)
        np.add.at(gx, (slice(None), slice(None), idx), g)
        x._accumulate(gx)

    return Tensor._from_op(out, (x,), backward)


# ---------------------------------------------------------------------------
# normalized exponentials
# ---------------------------------------------------------------------------


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out = e / e.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            # J^T g = s * (g - sum(g * s))
            dot = (grad * out).sum(axis=axis, keepdims=True)
            x._accumulate(out * (grad - dot))

    return Tensor._from_op(out, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """log(softmax(x)) computed stably."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - lse
    soft = np.exp(out)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor._from_op(out, (x,), backward)


# ---------------------------------------------------------------------------
# dropout
# ---------------------------------------------------------------------------


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: scale kept activations by ``1/(1-p)`` at train time."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    return x * Tensor(mask)


def spatial_dropout1d(
    x: Tensor, p: float, rng: np.random.Generator, training: bool = True
) -> Tensor:
    """Channel dropout for ``(N, C, L)`` tensors (drops whole feature maps).

    TCN residual blocks use this form of regularization (Bai et al. 2018);
    zeroing entire channels preserves temporal autocorrelation within each
    retained channel.
    """
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    n, c = x.shape[0], x.shape[1]
    mask = (rng.random((n, c, 1)) >= p) / (1.0 - p)
    return x * Tensor(mask)


# ---------------------------------------------------------------------------
# affine
# ---------------------------------------------------------------------------


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """``x @ weight.T + bias`` — the paper's eq. (6)."""
    out = x @ weight.transpose()
    if bias is not None:
        out = out + bias
    return out
