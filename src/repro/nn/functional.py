"""Stateless differentiable operations used by :mod:`repro.nn` layers.

The heavy ops here are :func:`conv1d` and :func:`lstm`. The convolution is
an explicit im2col gather (a memoized strided index array from
:mod:`repro.nn._plans`) followed by a single ``einsum`` contraction with a
cached contraction path; the input gradient is a loop-free col2im fold
(one strided-view accumulation per kernel tap) rather than an
``np.add.at`` scatter. The LSTM is a fused sequence kernel: one gate
matmul over the whole ``(N, T, C)`` input, a NumPy-only recurrent loop,
and a hand-written BPTT backward — no per-step Tensor allocation.

Every op with a nontrivial graph closure also has an inference fast path:
when autograd is off (or no parent requires grad) the op returns a
constant Tensor and skips closure/parent bookkeeping entirely.
"""

from __future__ import annotations

import numpy as np

from . import _plans
from .tensor import Tensor, is_grad_enabled

__all__ = [
    "conv1d",
    "lstm",
    "softmax",
    "log_softmax",
    "dropout",
    "spatial_dropout1d",
    "linear",
    "max_pool1d",
    "avg_pool1d",
]


# ---------------------------------------------------------------------------
# convolution
# ---------------------------------------------------------------------------


def _gather_indices(length: int, kernel_size: int, dilation: int, stride: int) -> np.ndarray:
    """Index matrix ``idx[k, t] = t * stride + k * dilation`` for im2col."""
    return _plans.gather_indices(length, kernel_size, dilation, stride)


def conv1d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int | tuple[int, int] = 0,
    dilation: int = 1,
) -> Tensor:
    """1-D cross-correlation (the deep-learning "convolution").

    Parameters
    ----------
    x: ``(N, C_in, L)`` input.
    weight: ``(C_out, C_in, K)`` filters.
    bias: optional ``(C_out,)``.
    padding: symmetric amount, or an explicit ``(left, right)`` pair —
        causal convolutions pad only on the left.
    """
    if isinstance(padding, tuple):
        pad_l, pad_r = padding
    else:
        pad_l = pad_r = int(padding)

    n, c_in, length = x.shape
    c_out, c_in_w, k = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"channel mismatch: input has {c_in}, weight expects {c_in_w}")

    xp = x.data
    if pad_l or pad_r:
        # np.pad's generality costs ~4x a zeros-plus-slice-assign here
        padded = np.zeros((n, c_in, length + pad_l + pad_r), dtype=xp.dtype)
        padded[:, :, pad_l : pad_l + length] = xp
        xp = padded
    flat_idx, l_out = _plans.gather_indices_flat(xp.shape[-1], k, dilation, stride)
    # np.take with the raveled index keeps the gather C-contiguous, so this
    # reshape to the GEMM layout (N, C_in*K, L_out) is a free view; the
    # contraction "oik,nikt->not" is then a batched GEMM, which beats even a
    # path-cached einsum (einsum re-parses subscripts on every call)
    cols2 = np.take(xp, flat_idx, axis=2).reshape(n, c_in * k, l_out)
    w2 = weight.data.reshape(c_out, c_in * k)
    out = np.matmul(w2, cols2)  # (N, C_out, L_out)
    if bias is not None:
        out += bias.data[None, :, None]

    requires = is_grad_enabled() and (
        x.requires_grad
        or weight.requires_grad
        or (bias is not None and bias.requires_grad)
    )
    if not requires:
        return Tensor(out)

    parents = [x, weight] + ([bias] if bias is not None else [])

    def backward(grad: np.ndarray) -> None:
        if weight.requires_grad:
            gw = np.matmul(grad, cols2.transpose(0, 2, 1)).sum(axis=0)
            weight._accumulate(gw.reshape(c_out, c_in, k))
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2)))
        if x.requires_grad:
            gcols = np.matmul(w2.T, grad).reshape(n, c_in, k, -1)
            gxp = _plans.fold_cols(gcols, length + pad_l + pad_r, stride, dilation)
            if pad_l or pad_r:
                gxp = gxp[:, :, pad_l : pad_l + length]
            x._accumulate(gxp)

    return Tensor._from_op(out, parents, backward)


# ---------------------------------------------------------------------------
# pooling
# ---------------------------------------------------------------------------


def max_pool1d(x: Tensor, kernel_size: int, stride: int | None = None) -> Tensor:
    """Max pooling over the last axis of a ``(N, C, L)`` tensor."""
    stride = stride or kernel_size
    idx = _gather_indices(x.shape[-1], kernel_size, 1, stride)
    windows = x.data[:, :, idx]  # (N, C, K, L_out)
    out = windows.max(axis=2)
    argmax = windows.argmax(axis=2)  # (N, C, L_out)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        gx = np.zeros_like(x.data)
        n, c, l_out = grad.shape
        src_pos = idx[argmax, np.arange(l_out)[None, None, :]]  # (N, C, L_out)
        ni = np.arange(n)[:, None, None]
        ci = np.arange(c)[None, :, None]
        np.add.at(gx, (ni, ci, src_pos), grad)
        x._accumulate(gx)

    return Tensor._from_op(out, (x,), backward)


def avg_pool1d(x: Tensor, kernel_size: int, stride: int | None = None) -> Tensor:
    """Average pooling over the last axis of a ``(N, C, L)`` tensor."""
    stride = stride or kernel_size
    idx = _gather_indices(x.shape[-1], kernel_size, 1, stride)
    out = x.data[:, :, idx].mean(axis=2)

    def backward(grad: np.ndarray) -> None:
        if not x.requires_grad:
            return
        gx = np.zeros_like(x.data)
        g = np.repeat(grad[:, :, None, :] / kernel_size, kernel_size, axis=2)
        np.add.at(gx, (slice(None), slice(None), idx), g)
        x._accumulate(gx)

    return Tensor._from_op(out, (x,), backward)


# ---------------------------------------------------------------------------
# normalized exponentials
# ---------------------------------------------------------------------------


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    out = e / e.sum(axis=axis, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            # J^T g = s * (g - sum(g * s))
            dot = (grad * out).sum(axis=axis, keepdims=True)
            x._accumulate(out * (grad - dot))

    return Tensor._from_op(out, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """log(softmax(x)) computed stably."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - lse
    soft = np.exp(out)

    def backward(grad: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor._from_op(out, (x,), backward)


# ---------------------------------------------------------------------------
# dropout
# ---------------------------------------------------------------------------


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: scale kept activations by ``1/(1-p)`` at train time."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    return x * Tensor(mask)


def spatial_dropout1d(
    x: Tensor, p: float, rng: np.random.Generator, training: bool = True
) -> Tensor:
    """Channel dropout for ``(N, C, L)`` tensors (drops whole feature maps).

    TCN residual blocks use this form of regularization (Bai et al. 2018);
    zeroing entire channels preserves temporal autocorrelation within each
    retained channel.
    """
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    n, c = x.shape[0], x.shape[1]
    mask = (rng.random((n, c, 1)) >= p) / (1.0 - p)
    return x * Tensor(mask)


# ---------------------------------------------------------------------------
# affine
# ---------------------------------------------------------------------------


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """``x @ weight.T + bias`` — the paper's eq. (6)."""
    if not (
        is_grad_enabled()
        and (
            x.requires_grad
            or weight.requires_grad
            or (bias is not None and bias.requires_grad)
        )
    ):
        # inference fast path: one GEMM, no transpose node, no graph wiring
        out = x.data @ weight.data.T
        if bias is not None:
            out += bias.data
        return Tensor(out)
    out = x @ weight.transpose()
    if bias is not None:
        out = out + bias
    return out


# ---------------------------------------------------------------------------
# fused LSTM sequence kernel
# ---------------------------------------------------------------------------


def _sigmoid_arr(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic on a raw array.

    ``exp(-|x|)`` never overflows, and the two ``np.where`` branches are the
    exact expressions of the piecewise-stable form (``1/(1+e^-x)`` for
    ``x >= 0``, ``e^x/(1+e^x)`` otherwise) — element-wise identical to
    :meth:`Tensor.sigmoid`, but with no boolean fancy indexing.
    """
    e = np.exp(-np.abs(x))
    return np.where(x >= 0, 1.0 / (1.0 + e), e / (1.0 + e))


def lstm(
    x: Tensor,
    w_ih: Tensor,
    w_hh: Tensor,
    bias: Tensor,
    state: tuple[Tensor, Tensor] | None = None,
) -> Tensor:
    """Fused single-layer LSTM over a ``(N, T, F)`` sequence.

    The input projection for all four gates and all ``T`` steps is one
    GEMM; the recurrent loop then runs on raw NumPy arrays (no per-step
    Tensor allocation, no autograd chain of length ``T``), and backward is
    a hand-written BPTT sweep over stashed gate activations. Gate layout
    matches :class:`~repro.nn.layers.recurrent.LSTMCell`: ``[i, f, g, o]``.

    Returns the hidden sequence ``(N, T, H)``. ``state`` is an optional
    ``(h_0, c_0)`` pair of ``(N, H)`` Tensors; gradients flow back into it.
    """
    n, t, _ = x.shape
    h_size = w_hh.shape[-1]
    xp = x.data

    if state is not None:
        h0, c0 = Tensor.ensure(state[0]), Tensor.ensure(state[1])
        h_prev0, c_prev0 = h0.data, c0.data
    else:
        h0 = c0 = None
        h_prev0 = np.zeros((n, h_size), dtype=xp.dtype)
        c_prev0 = np.zeros((n, h_size), dtype=xp.dtype)

    # one GEMM for the whole sequence's input projection (bias folded in)
    gates_x = xp.reshape(n * t, -1) @ w_ih.data.T
    gates_x += bias.data
    gates_x = gates_x.reshape(n, t, 4 * h_size)
    whh_t = w_hh.data.T

    parents = [x, w_ih, w_hh, bias] + ([h0, c0] if h0 is not None else [])
    requires = is_grad_enabled() and any(p.requires_grad for p in parents)

    hs = np.empty((n, t, h_size), dtype=xp.dtype)
    h, c = h_prev0, c_prev0

    if not requires:
        # inference fast path: nothing stashed, nothing wired
        for step in range(t):
            g_all = gates_x[:, step] + h @ whh_t
            i_f = _sigmoid_arr(g_all[:, : 2 * h_size])
            i, f = i_f[:, :h_size], i_f[:, h_size:]
            g = np.tanh(g_all[:, 2 * h_size : 3 * h_size])
            o = _sigmoid_arr(g_all[:, 3 * h_size :])
            c = f * c + i * g
            h = o * np.tanh(c)
            hs[:, step] = h
        return Tensor(hs)

    # training path: stash post-activation gates and cell states for BPTT
    ia = np.empty((n, t, h_size), dtype=xp.dtype)
    fa = np.empty_like(ia)
    ga = np.empty_like(ia)
    oa = np.empty_like(ia)
    ca = np.empty_like(ia)
    tca = np.empty_like(ia)
    for step in range(t):
        g_all = gates_x[:, step] + h @ whh_t
        i_f = _sigmoid_arr(g_all[:, : 2 * h_size])
        i, f = i_f[:, :h_size], i_f[:, h_size:]
        g = np.tanh(g_all[:, 2 * h_size : 3 * h_size])
        o = _sigmoid_arr(g_all[:, 3 * h_size :])
        c = f * c + i * g
        tc = np.tanh(c)
        h = o * tc
        ia[:, step], fa[:, step], ga[:, step], oa[:, step] = i, f, g, o
        ca[:, step], tca[:, step] = c, tc
        hs[:, step] = h

    def backward(grad: np.ndarray) -> None:
        dgates = np.empty((n, t, 4 * h_size), dtype=grad.dtype)
        dh_next = np.zeros((n, h_size), dtype=grad.dtype)
        dc_next = np.zeros((n, h_size), dtype=grad.dtype)
        whh = w_hh.data
        for step in range(t - 1, -1, -1):
            i, f, g, o = ia[:, step], fa[:, step], ga[:, step], oa[:, step]
            tc = tca[:, step]
            c_prev = ca[:, step - 1] if step > 0 else c_prev0
            dh = grad[:, step] + dh_next
            dc = dc_next + dh * o * (1.0 - tc * tc)
            dg_step = dgates[:, step]
            dg_step[:, :h_size] = dc * g * i * (1.0 - i)
            dg_step[:, h_size : 2 * h_size] = dc * c_prev * f * (1.0 - f)
            dg_step[:, 2 * h_size : 3 * h_size] = dc * i * (1.0 - g * g)
            dg_step[:, 3 * h_size :] = dh * tc * o * (1.0 - o)
            dh_next = dg_step @ whh
            dc_next = dc * f
        flat = dgates.reshape(n * t, 4 * h_size)
        if w_ih.requires_grad:
            w_ih._accumulate(flat.T @ xp.reshape(n * t, -1))
        if w_hh.requires_grad:
            hp = np.empty_like(hs)
            hp[:, 0] = h_prev0
            hp[:, 1:] = hs[:, :-1]
            w_hh._accumulate(flat.T @ hp.reshape(n * t, h_size))
        if bias.requires_grad:
            bias._accumulate(flat.sum(axis=0))
        if x.requires_grad:
            x._accumulate((flat @ w_ih.data).reshape(n, t, -1))
        if h0 is not None and h0.requires_grad:
            h0._accumulate(dh_next)
        if c0 is not None and c0.requires_grad:
            c0._accumulate(dc_next)

    return Tensor._from_op(hs, parents, backward)
