"""Kernel plan caches for the :mod:`repro.nn` substrate.

The substrate's hot ops (im2col convolution, einsum contractions) used to
pay per-call planning overhead: rebuilding the gather index matrix and
re-running ``np.einsum``'s path optimizer on every forward/backward. Both
are pure functions of the *shape signature*, not the data, so this module
memoizes them process-wide:

- :func:`gather_indices` — the ``(K, L_out)`` im2col index matrix keyed on
  ``(length, kernel, dilation, stride)``. Returned arrays are marked
  read-only so a cached plan can never be corrupted by a caller.
- :func:`planned_einsum` — ``np.einsum`` executed with a contraction path
  found once per ``(subscripts, shapes)`` signature via ``np.einsum_path``.
- :func:`fold_cols` — the adjoint of the im2col gather: a loop-free
  col2im scatter-add expressed as ``K`` strided-view slice accumulations
  (``K`` is the kernel size, 2–7 in practice) instead of one
  ``np.add.at`` call over the full index matrix, which is the slowest
  scatter primitive in NumPy. The accumulation order (kernel-tap major,
  ascending time) matches ``np.add.at`` iterating the index matrix in C
  order, so results are bit-for-bit identical.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from ..obs.registry import MetricRegistry, get_registry

__all__ = [
    "gather_indices",
    "einsum_path",
    "planned_einsum",
    "fold_cols",
    "conv_out_length",
    "plan_cache_stats",
    "register_plan_metrics",
]


def conv_out_length(length: int, kernel_size: int, dilation: int, stride: int) -> int:
    """Output length of a 1-D convolution over an already-padded input."""
    return (length - (kernel_size - 1) * dilation - 1) // stride + 1


@lru_cache(maxsize=None)
def gather_indices(length: int, kernel_size: int, dilation: int, stride: int) -> np.ndarray:
    """Memoized index matrix ``idx[k, t] = t * stride + k * dilation`` for im2col."""
    l_out = conv_out_length(length, kernel_size, dilation, stride)
    if l_out <= 0:
        raise ValueError(
            f"conv1d produces empty output: length={length}, "
            f"kernel={kernel_size}, dilation={dilation}, stride={stride}"
        )
    k = np.arange(kernel_size)[:, None] * dilation
    t = np.arange(l_out)[None, :] * stride
    idx = k + t
    idx.setflags(write=False)
    return idx


@lru_cache(maxsize=None)
def gather_indices_flat(
    length: int, kernel_size: int, dilation: int, stride: int
) -> tuple[np.ndarray, int]:
    """Raveled gather index plus ``l_out``, for ``np.take`` along the length axis.

    ``np.take`` with a flat index produces a C-contiguous ``(N, C, K*L_out)``
    result, so the downstream reshape to the GEMM layout ``(N, C*K, L_out)``
    is a free view — fancy indexing with the 2-D matrix yields a
    non-contiguous layout whose reshape copies the whole column tensor.
    """
    idx = gather_indices(length, kernel_size, dilation, stride)
    flat = np.ascontiguousarray(idx.ravel())
    flat.setflags(write=False)
    return flat, idx.shape[1]


@lru_cache(maxsize=None)
def einsum_path(subscripts: str, *shapes: tuple[int, ...]) -> list:
    """Contraction path for ``subscripts`` over operands of the given shapes.

    ``np.einsum(..., optimize=True)`` re-runs its path search on every call;
    for the fixed shape signatures of a training loop that search costs more
    than the small contractions themselves. ``np.empty`` operands are used
    because path search only inspects shapes.
    """
    path, _ = np.einsum_path(
        subscripts, *[np.empty(s) for s in shapes], optimize="optimal"
    )
    return path


def planned_einsum(subscripts: str, *operands: np.ndarray) -> np.ndarray:
    """``np.einsum`` with a memoized contraction path."""
    path = einsum_path(subscripts, *(op.shape for op in operands))
    return np.einsum(subscripts, *operands, optimize=path)


def fold_cols(
    gcols: np.ndarray, length: int, stride: int, dilation: int
) -> np.ndarray:
    """Scatter-add im2col columns ``(N, C, K, L_out)`` back onto ``(N, C, length)``.

    Equivalent to ``np.add.at(gxp, (:, :, gather_indices(...)), gcols)`` but
    expressed as one vectorized strided-slice accumulation per kernel tap.
    Within a tap the target positions are distinct, so ``+=`` on the strided
    view is an exact scatter; across taps the per-position accumulation
    order matches ``np.add.at``'s C-order traversal of the index matrix.
    """
    n, c, k, l_out = gcols.shape
    gxp = np.zeros((n, c, length), dtype=gcols.dtype)
    span = (l_out - 1) * stride + 1
    for tap in range(k):
        off = tap * dilation
        gxp[:, :, off : off + span : stride] += gcols[:, :, tap, :]
    return gxp


# ---------------------------------------------------------------------------
# observability: plan-cache hit/miss counters
# ---------------------------------------------------------------------------

_PLAN_CACHES = {
    "gather_indices": gather_indices,
    "gather_indices_flat": gather_indices_flat,
    "einsum_path": einsum_path,
}


def plan_cache_stats() -> dict[str, dict[str, int]]:
    """Hit/miss/size snapshot of every kernel plan cache."""
    stats: dict[str, dict[str, int]] = {}
    for name, fn in _PLAN_CACHES.items():
        info = fn.cache_info()
        stats[name] = {"hits": info.hits, "misses": info.misses, "size": info.currsize}
    return stats


def register_plan_metrics(registry: MetricRegistry | None = None) -> None:
    """Mirror the plan caches into ``registry`` at every collection.

    The hot path pays nothing: ``lru_cache`` already tracks hits and
    misses, and a registry collector copies ``cache_info()`` into
    ``nn_plan_cache_{hits,misses}_total`` counters and an
    ``nn_plan_cache_size`` gauge only when a snapshot is taken. The
    process-global registry is wired at import; tests with injected
    registries call this themselves.
    """
    reg = get_registry(registry)

    def collect() -> None:
        for name, stats in plan_cache_stats().items():
            labels = {"cache": name}
            reg.counter(
                "nn_plan_cache_hits_total", "kernel plan cache hits", labels
            ).restore(stats["hits"])
            reg.counter(
                "nn_plan_cache_misses_total", "kernel plan cache misses", labels
            ).restore(stats["misses"])
            reg.gauge(
                "nn_plan_cache_size", "cached kernel plans", labels
            ).set(stats["size"])

    reg.add_collector(collect, name="nn_plan_caches")


register_plan_metrics()
