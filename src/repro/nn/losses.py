"""Loss functions.

MSE (paper eq. 9) is the training objective in all experiments; MAE
(paper eq. 10) is the second reporting metric. Huber is included for the
robustness ablation.
"""

from __future__ import annotations

from .module import Module
from .tensor import Tensor

__all__ = ["MSELoss", "MAELoss", "HuberLoss"]


class _Loss(Module):
    def __init__(self, reduction: str = "mean") -> None:
        super().__init__()
        if reduction not in ("mean", "sum", "none"):
            raise ValueError(f"reduction must be mean/sum/none, got {reduction!r}")
        self.reduction = reduction

    def _reduce(self, per_element: Tensor) -> Tensor:
        if self.reduction == "mean":
            return per_element.mean()
        if self.reduction == "sum":
            return per_element.sum()
        return per_element


class MSELoss(_Loss):
    """Mean squared error — paper eq. (9)."""

    def forward(self, prediction: Tensor, target: Tensor) -> Tensor:
        target = Tensor.ensure(target)
        diff = prediction - target
        return self._reduce(diff * diff)


class MAELoss(_Loss):
    """Mean absolute error — paper eq. (10)."""

    def forward(self, prediction: Tensor, target: Tensor) -> Tensor:
        target = Tensor.ensure(target)
        return self._reduce((prediction - target).abs())


class HuberLoss(_Loss):
    """Quadratic near zero, linear in the tails (delta-smooth L1)."""

    def __init__(self, delta: float = 1.0, reduction: str = "mean") -> None:
        super().__init__(reduction)
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.delta = delta

    def forward(self, prediction: Tensor, target: Tensor) -> Tensor:
        target = Tensor.ensure(target)
        diff = prediction - target
        abs_diff = diff.abs()
        quadratic = diff * diff * 0.5
        linear = abs_diff * self.delta - 0.5 * self.delta**2
        return self._reduce(Tensor.where(abs_diff.data <= self.delta, quadratic, linear))
