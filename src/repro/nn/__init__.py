"""A from-scratch NumPy deep-learning framework.

This subpackage replaces the TensorFlow/Keras stack the paper ran on:
reverse-mode autodiff (:mod:`repro.nn.tensor`), layers
(:mod:`repro.nn.layers`), losses and optimizers — everything the RPTCN
architecture and its deep baselines need, with vectorized NumPy kernels.
"""

from . import functional, init, optim
from .layers import (
    ELU,
    GELU,
    GRU,
    LSTM,
    AvgPool1d,
    BahdanauAttention,
    BatchNorm1d,
    CausalConv1d,
    Conv1d,
    Dropout,
    FeatureAttention,
    Flatten,
    GlobalAvgPool1d,
    GRUCell,
    Lambda,
    LayerNorm,
    LeakyReLU,
    Linear,
    LSTMCell,
    LuongAttention,
    MaxPool1d,
    ModuleList,
    ReLU,
    Sequential,
    Sigmoid,
    Softmax,
    SpatialDropout1d,
    Tanh,
    TemporalAttention,
    WeightNormConv1d,
)
from .init import default_rng, set_default_seed
from .losses import HuberLoss, MAELoss, MSELoss
from .module import Module, Parameter
from .tensor import (
    Tensor,
    dtype_policy,
    get_default_dtype,
    is_grad_enabled,
    no_grad,
    set_default_dtype,
)

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "set_default_dtype",
    "get_default_dtype",
    "dtype_policy",
    "set_default_seed",
    "default_rng",
    "Module",
    "Parameter",
    "functional",
    "init",
    "optim",
    "MSELoss",
    "MAELoss",
    "HuberLoss",
    # layers
    "Linear",
    "Conv1d",
    "CausalConv1d",
    "WeightNormConv1d",
    "LayerNorm",
    "BatchNorm1d",
    "Dropout",
    "SpatialDropout1d",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Softmax",
    "LeakyReLU",
    "ELU",
    "GELU",
    "Sequential",
    "ModuleList",
    "Flatten",
    "Lambda",
    "MaxPool1d",
    "AvgPool1d",
    "GlobalAvgPool1d",
    "LSTM",
    "LSTMCell",
    "GRU",
    "GRUCell",
    "FeatureAttention",
    "TemporalAttention",
    "BahdanauAttention",
    "LuongAttention",
]
