"""First-order optimizers, LR schedulers and gradient clipping."""

from .adagrad import Adagrad
from .adam import Adam, AdamW
from .base import Optimizer
from .clip import clip_grad_norm, clip_grad_value
from .rmsprop import RMSprop
from .schedulers import (
    CosineAnnealingLR,
    ExponentialLR,
    ReduceLROnPlateau,
    StepLR,
)
from .sgd import SGD

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "RMSprop",
    "Adagrad",
    "StepLR",
    "ExponentialLR",
    "CosineAnnealingLR",
    "ReduceLROnPlateau",
    "clip_grad_norm",
    "clip_grad_value",
]
