"""Adam and AdamW optimizers (Kingma & Ba 2015; Loshchilov & Hutter 2019).

Adam is the optimizer used for all deep models in the reproduction, matching
the Keras default setup of the paper's experiments.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..module import Parameter
from .base import Optimizer

__all__ = ["Adam", "AdamW"]


class Adam(Optimizer):
    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.betas
        bias1 = 1.0 - b1**self._t
        bias2 = 1.0 - b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data  # L2-coupled (classic Adam)
            m *= b1
            m += (1.0 - b1) * g
            v *= b2
            v += (1.0 - b2) * g * g
            p.data -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)


class AdamW(Adam):
    """Adam with decoupled weight decay applied directly to the weights."""

    def step(self) -> None:
        if self.weight_decay:
            for p in self.params:
                if p.grad is not None:
                    p.data -= self.lr * self.weight_decay * p.data
        wd, self.weight_decay = self.weight_decay, 0.0
        try:
            super().step()
        finally:
            self.weight_decay = wd
