"""Adagrad optimizer (Duchi et al. 2011)."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..module import Parameter
from .base import Optimizer

__all__ = ["Adagrad"]


class Adagrad(Optimizer):
    def __init__(
        self, params: Iterable[Parameter], lr: float = 1e-2, eps: float = 1e-10
    ) -> None:
        super().__init__(params, lr)
        self.eps = eps
        self._acc = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, acc in zip(self.params, self._acc):
            if p.grad is None:
                continue
            acc += p.grad**2
            p.data -= self.lr * p.grad / (np.sqrt(acc) + self.eps)
