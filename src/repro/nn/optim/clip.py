"""Gradient clipping utilities (used for recurrent baselines)."""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from ..module import Parameter

__all__ = ["clip_grad_norm", "clip_grad_value"]


def clip_grad_norm(params: Iterable[Parameter], max_norm: float) -> float:
    """Scale all gradients so their joint L2 norm is at most ``max_norm``.

    Returns the pre-clip norm (useful for logging training dynamics).
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    grads = [p.grad for p in params if p.grad is not None]
    if not grads:
        return 0.0
    total = math.sqrt(sum(float((g**2).sum()) for g in grads))
    if total > max_norm:
        scale = max_norm / (total + 1e-12)
        for g in grads:
            g *= scale
    return total


def clip_grad_value(params: Iterable[Parameter], clip_value: float) -> None:
    """Clamp each gradient element into ``[-clip_value, clip_value]``."""
    if clip_value <= 0:
        raise ValueError(f"clip_value must be positive, got {clip_value}")
    for p in params:
        if p.grad is not None:
            np.clip(p.grad, -clip_value, clip_value, out=p.grad)
