"""Learning-rate schedulers operating on an :class:`Optimizer`'s ``lr``."""

from __future__ import annotations

import math

from .base import Optimizer

__all__ = ["StepLR", "ExponentialLR", "CosineAnnealingLR", "ReduceLROnPlateau"]


class _Scheduler:
    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    @property
    def lr(self) -> float:
        return self.optimizer.lr


class StepLR(_Scheduler):
    """Multiply lr by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size < 1:
            raise ValueError(f"step_size must be >= 1, got {step_size}")
        self.step_size = step_size
        self.gamma = gamma

    def step(self) -> None:
        self.epoch += 1
        self.optimizer.lr = self.base_lr * self.gamma ** (self.epoch // self.step_size)


class ExponentialLR(_Scheduler):
    """lr = base_lr * gamma^epoch."""

    def __init__(self, optimizer: Optimizer, gamma: float = 0.95) -> None:
        super().__init__(optimizer)
        self.gamma = gamma

    def step(self) -> None:
        self.epoch += 1
        self.optimizer.lr = self.base_lr * self.gamma**self.epoch


class CosineAnnealingLR(_Scheduler):
    """Cosine decay from base_lr to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0) -> None:
        super().__init__(optimizer)
        if t_max < 1:
            raise ValueError(f"t_max must be >= 1, got {t_max}")
        self.t_max = t_max
        self.eta_min = eta_min

    def step(self) -> None:
        self.epoch = min(self.epoch + 1, self.t_max)
        cos = (1.0 + math.cos(math.pi * self.epoch / self.t_max)) / 2.0
        self.optimizer.lr = self.eta_min + (self.base_lr - self.eta_min) * cos


class ReduceLROnPlateau(_Scheduler):
    """Shrink lr by ``factor`` when a monitored metric stops improving."""

    def __init__(
        self,
        optimizer: Optimizer,
        factor: float = 0.5,
        patience: int = 5,
        min_lr: float = 1e-6,
        threshold: float = 1e-4,
    ) -> None:
        super().__init__(optimizer)
        if not 0.0 < factor < 1.0:
            raise ValueError(f"factor must be in (0, 1), got {factor}")
        self.factor = factor
        self.patience = patience
        self.min_lr = min_lr
        self.threshold = threshold
        self.best = math.inf
        self.bad_epochs = 0

    def step(self, metric: float) -> None:
        self.epoch += 1
        if metric < self.best - self.threshold:
            self.best = metric
            self.bad_epochs = 0
        else:
            self.bad_epochs += 1
            if self.bad_epochs > self.patience:
                self.optimizer.lr = max(self.optimizer.lr * self.factor, self.min_lr)
                self.bad_epochs = 0
