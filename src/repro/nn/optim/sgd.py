"""Stochastic gradient descent with optional momentum / Nesterov / weight decay."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..module import Parameter
from .base import Optimizer

__all__ = ["SGD"]


class SGD(Optimizer):
    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-2,
        momentum: float = 0.0,
        nesterov: bool = False,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = momentum
        self.nesterov = nesterov
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                update = g + self.momentum * v if self.nesterov else v
            else:
                update = g
            p.data -= self.lr * update
