"""RMSprop optimizer (Tieleman & Hinton 2012)."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..module import Parameter
from .base import Optimizer

__all__ = ["RMSprop"]


class RMSprop(Optimizer):
    def __init__(
        self,
        params: Iterable[Parameter],
        lr: float = 1e-3,
        alpha: float = 0.99,
        eps: float = 1e-8,
        momentum: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        if not 0.0 <= alpha < 1.0:
            raise ValueError(f"alpha must be in [0, 1), got {alpha}")
        self.alpha = alpha
        self.eps = eps
        self.momentum = momentum
        self._sq = [np.zeros_like(p.data) for p in self.params]
        self._buf = [np.zeros_like(p.data) for p in self.params] if momentum else None

    def step(self) -> None:
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            sq = self._sq[i]
            sq *= self.alpha
            sq += (1.0 - self.alpha) * p.grad**2
            update = p.grad / (np.sqrt(sq) + self.eps)
            if self._buf is not None:
                buf = self._buf[i]
                buf *= self.momentum
                buf += update
                update = buf
            p.data -= self.lr * update
