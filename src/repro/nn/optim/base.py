"""Optimizer base class."""

from __future__ import annotations

from typing import Iterable

from ..module import Parameter

__all__ = ["Optimizer"]


class Optimizer:
    """Holds a parameter list and applies in-place updates.

    Updates mutate ``param.data`` in place (no reallocation per step),
    following the guide's in-place-operation idiom.
    """

    def __init__(self, params: Iterable[Parameter], lr: float) -> None:
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError
