"""Module / Parameter machinery (a compact analogue of ``torch.nn.Module``).

Modules register parameters and sub-modules automatically through
``__setattr__`` so that :meth:`Module.parameters`, :meth:`Module.state_dict`
and train/eval mode switching walk the whole tree.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module"]


def _npz_path(path):
    """Mirror ``np.savez``'s extension rule so save/load agree on the name."""
    from pathlib import Path

    p = Path(path)
    return p if p.name.endswith(".npz") else p.with_name(p.name + ".npz")


class Parameter(Tensor):
    """A Tensor that is a learnable leaf of a module tree."""

    def __init__(self, data, name: str = "") -> None:
        super().__init__(data, requires_grad=True, name=name)
        # Parameters must stay differentiable even when constructed inside
        # a no_grad() block (e.g. lazily-built layers during inference).
        self.requires_grad = True


class Module:
    """Base class for all neural-network layers and models."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # -- registration -------------------------------------------------------

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            self._modules.pop(name, None)
        elif isinstance(value, Module):
            self._modules[name] = value
            self._parameters.pop(name, None)
        object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        setattr(self, name, module)

    # -- traversal -----------------------------------------------------------

    def parameters(self) -> Iterator[Parameter]:
        """Yield every learnable parameter in the subtree (depth-first)."""
        seen: set[int] = set()
        for _, p in self.named_parameters():
            if id(p) not in seen:
                seen.add(id(p))
                yield p

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, p in self._parameters.items():
            yield (f"{prefix}{name}", p)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    def num_parameters(self) -> int:
        """Total number of scalar learnable weights."""
        return sum(p.size for p in self.parameters())

    # -- mode ------------------------------------------------------------------

    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def to_dtype(self, dtype) -> "Module":
        """Cast every parameter in place (float32 for serving, float64 to train).

        Pair with :func:`repro.nn.set_default_dtype` (or the
        :class:`~repro.nn.tensor.dtype_policy` context manager) so inputs
        and weights agree and the inference fast paths stay in one dtype.
        """
        dt = np.dtype(dtype)
        for p in self.parameters():
            p.data = p.data.astype(dt, copy=False)
        return self

    # -- gradients ---------------------------------------------------------------

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    # -- serialization -------------------------------------------------------------

    def state_dict(self) -> "OrderedDict[str, np.ndarray]":
        return OrderedDict((name, p.data.copy()) for name, p in self.named_parameters())

    def load_state_dict(self, state: dict) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, p in own.items():
            value = np.asarray(state[name], dtype=p.data.dtype)
            if value.shape != p.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: have {p.data.shape}, got {value.shape}"
                )
            p.data[...] = value

    def save(self, path) -> None:
        """Persist parameters with ``np.savez`` (keys are dotted names).

        The archive is staged in a temp file and published with
        ``os.replace``, so a crash mid-write can never leave a truncated
        ``.npz`` where the previous good weights used to be.
        """
        from ..ioutil import atomic_output

        final = _npz_path(path)
        with atomic_output(final, suffix=".npz") as tmp:
            np.savez(tmp, **{k: v for k, v in self.state_dict().items()})

    def load(self, path) -> None:
        import zipfile

        final = _npz_path(path)
        try:
            with np.load(final) as data:
                state = {k: data[k] for k in data.files}
        except FileNotFoundError:
            raise
        except (zipfile.BadZipFile, OSError, EOFError, ValueError, KeyError) as exc:
            raise ValueError(
                f"failed to load weights from {final}: file is corrupt or truncated ({exc})"
            ) from exc
        self.load_state_dict(state)

    # -- call protocol ------------------------------------------------------------

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        child_lines = [f"  ({name}): {module!r}" for name, module in self._modules.items()]
        body = "\n".join(child_lines)
        header = self.__class__.__name__
        return f"{header}(\n{body}\n)" if body else f"{header}()"
