"""Normalization layers: weight-normalized convolution, LayerNorm, BatchNorm.

TCN residual blocks (paper Fig. 6) wrap each dilated causal convolution in
*weight normalization* (Salimans & Kingma 2016): the weight is
reparameterized as ``w = g * v / ||v||`` with the norm taken per output
filter. The reparameterization is expressed entirely in autograd ops, so
gradients flow to ``g`` and ``v`` without bespoke backward code.
"""

from __future__ import annotations

import numpy as np

from .. import functional as F
from .. import init
from ..module import Module, Parameter
from ..tensor import Tensor

__all__ = ["WeightNormConv1d", "LayerNorm", "BatchNorm1d"]

_EPS = 1e-12


class WeightNormConv1d(Module):
    """Causal dilated Conv1d with weight normalization.

    ``g`` is initialized to the norm of the initial ``v`` so that at
    initialization the layer behaves exactly like the unnormalized conv.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        dilation: int = 1,
        causal: bool = True,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else init.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.dilation = dilation
        self.causal = causal
        v0 = init.he_uniform((out_channels, in_channels, kernel_size), rng)
        self.v = Parameter(v0)
        self.g = Parameter(np.sqrt((v0**2).sum(axis=(1, 2), keepdims=True)))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def _weight(self) -> Tensor:
        norm = (self.v * self.v).sum(axis=(1, 2), keepdims=True).sqrt() + _EPS
        return self.v * (self.g / norm)

    def forward(self, x: Tensor) -> Tensor:
        pad = ((self.kernel_size - 1) * self.dilation, 0) if self.causal else 0
        return F.conv1d(
            x, self._weight(), self.bias, stride=1, padding=pad, dilation=self.dilation
        )

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"WeightNormConv1d({self.in_channels}, {self.out_channels}, "
            f"k={self.kernel_size}, dilation={self.dilation}, causal={self.causal})"
        )


class LayerNorm(Module):
    """Normalize over the last axis with learnable scale/shift."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.eps = eps
        self.normalized_shape = normalized_shape
        self.gamma = Parameter(init.ones((normalized_shape,)))
        self.beta = Parameter(init.zeros((normalized_shape,)))

    def forward(self, x: Tensor) -> Tensor:
        mu = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        normed = (x - mu) / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta

    def __repr__(self) -> str:  # pragma: no cover
        return f"LayerNorm({self.normalized_shape})"


class BatchNorm1d(Module):
    """Batch normalization over ``(N, C)`` or ``(N, C, L)`` inputs.

    Keeps exponential running statistics for eval-mode normalization.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(init.ones((num_features,)))
        self.beta = Parameter(init.zeros((num_features,)))
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim == 2:
            axes: tuple[int, ...] = (0,)
            view = (1, self.num_features)
        elif x.ndim == 3:
            axes = (0, 2)
            view = (1, self.num_features, 1)
        else:
            raise ValueError(f"BatchNorm1d expects 2-D or 3-D input, got shape {x.shape}")

        if self.training:
            mu = x.mean(axis=axes, keepdims=True)
            var = x.var(axis=axes, keepdims=True)
            m = self.momentum
            self.running_mean = (1 - m) * self.running_mean + m * mu.data.reshape(-1)
            self.running_var = (1 - m) * self.running_var + m * var.data.reshape(-1)
        else:
            mu = Tensor(self.running_mean.reshape(view))
            var = Tensor(self.running_var.reshape(view))

        normed = (x - mu) / (var + self.eps).sqrt()
        return normed * self.gamma.reshape(view) + self.beta.reshape(view)

    def __repr__(self) -> str:  # pragma: no cover
        return f"BatchNorm1d({self.num_features})"
