"""Transformer building blocks: multi-head self-attention and encoder block.

A post-TCN extension point: the paper positions TCNs against RNNs; the
natural 2020s follow-up question is "would self-attention do better?".
These layers make that ablation runnable on the same autograd stack.

The attention here is *causal* (upper-triangular masking) so the
forecaster family stays leak-free, like the dilated causal convolutions.
"""

from __future__ import annotations

import math

import numpy as np

from .. import functional as F
from ..module import Module
from ..tensor import Tensor
from .dropout import Dropout
from .linear import Linear
from .normalization import LayerNorm

__all__ = ["MultiHeadSelfAttention", "TransformerEncoderBlock", "positional_encoding"]


def positional_encoding(length: int, dim: int) -> np.ndarray:
    """Sinusoidal positions (Vaswani et al. 2017), shape ``(length, dim)``."""
    if length < 1 or dim < 1:
        raise ValueError(f"length and dim must be >= 1, got {length}, {dim}")
    pos = np.arange(length)[:, None]
    i = np.arange(dim)[None, :]
    angle = pos / np.power(10000.0, (2 * (i // 2)) / dim)
    enc = np.empty((length, dim))
    enc[:, 0::2] = np.sin(angle[:, 0::2])
    enc[:, 1::2] = np.cos(angle[:, 1::2])
    return enc


class MultiHeadSelfAttention(Module):
    """Causal multi-head self-attention over ``(N, T, D)`` sequences."""

    def __init__(
        self,
        dim: int,
        n_heads: int = 4,
        causal: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if dim % n_heads != 0:
            raise ValueError(f"dim {dim} not divisible by n_heads {n_heads}")
        self.dim = dim
        self.n_heads = n_heads
        self.head_dim = dim // n_heads
        self.causal = causal
        self.wq = Linear(dim, dim, rng=rng)
        self.wk = Linear(dim, dim, rng=rng)
        self.wv = Linear(dim, dim, rng=rng)
        self.wo = Linear(dim, dim, rng=rng)

    def _split_heads(self, x: Tensor, n: int, t: int) -> Tensor:
        # (N, T, D) -> (N, H, T, Dh)
        return x.reshape(n, t, self.n_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor) -> Tensor:
        n, t, _ = x.shape
        q = self._split_heads(self.wq(x), n, t)
        k = self._split_heads(self.wk(x), n, t)
        v = self._split_heads(self.wv(x), n, t)

        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / math.sqrt(self.head_dim))
        if self.causal:
            mask = np.triu(np.full((t, t), -1e9), k=1)
            scores = scores + Tensor(mask)
        attn = F.softmax(scores, axis=-1)  # (N, H, T, T)
        context = attn @ v  # (N, H, T, Dh)
        merged = context.transpose(0, 2, 1, 3).reshape(n, t, self.dim)
        return self.wo(merged)

    def attention_map(self, x: Tensor) -> np.ndarray:
        """Detached ``(N, H, T, T)`` attention weights for inspection."""
        n, t, _ = x.shape
        q = self._split_heads(self.wq(x), n, t)
        k = self._split_heads(self.wk(x), n, t)
        scores = (q @ k.transpose(0, 1, 3, 2)) * (1.0 / math.sqrt(self.head_dim))
        if self.causal:
            scores = scores + Tensor(np.triu(np.full((t, t), -1e9), k=1))
        return F.softmax(scores, axis=-1).data


class TransformerEncoderBlock(Module):
    """Pre-norm encoder block: MHA + residual, FFN + residual."""

    def __init__(
        self,
        dim: int,
        n_heads: int = 4,
        ffn_dim: int | None = None,
        dropout: float = 0.1,
        causal: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        ffn_dim = ffn_dim or 4 * dim
        self.norm1 = LayerNorm(dim)
        self.attn = MultiHeadSelfAttention(dim, n_heads, causal=causal, rng=rng)
        self.drop1 = Dropout(dropout, rng=rng)
        self.norm2 = LayerNorm(dim)
        self.ffn1 = Linear(dim, ffn_dim, rng=rng)
        self.ffn2 = Linear(ffn_dim, dim, rng=rng)
        self.drop2 = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.drop1(self.attn(self.norm1(x)))
        return x + self.drop2(self.ffn2(self.ffn1(self.norm2(x)).relu()))
