"""Pooling layers over the temporal axis of ``(N, C, L)`` tensors."""

from __future__ import annotations

from .. import functional as F
from ..module import Module
from ..tensor import Tensor

__all__ = ["MaxPool1d", "AvgPool1d", "GlobalAvgPool1d"]


class MaxPool1d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool1d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:  # pragma: no cover
        return f"MaxPool1d(k={self.kernel_size}, stride={self.stride})"


class AvgPool1d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool1d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:  # pragma: no cover
        return f"AvgPool1d(k={self.kernel_size}, stride={self.stride})"


class GlobalAvgPool1d(Module):
    """Mean over the temporal axis: ``(N, C, L) -> (N, C)``."""

    def forward(self, x: Tensor) -> Tensor:
        return x.mean(axis=-1)

    def __repr__(self) -> str:  # pragma: no cover
        return "GlobalAvgPool1d()"
