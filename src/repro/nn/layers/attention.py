"""Attention mechanisms.

The paper defines attention generically (eqs. 7-8):

    a = f_phi(x)        # an attention network produces a weight vector
    g = a ⊙ z           # elementwise re-weighting of the feature vector

:class:`FeatureAttention` is that exact form and is the mechanism used in
RPTCN after the fully connected layer (paper Fig. 5). The classic
sequence-attention variants the paper cites (Bahdanau, Luong) are provided
for the ablation benchmarks.
"""

from __future__ import annotations

import numpy as np

from .. import functional as F
from ..module import Module
from ..tensor import Tensor
from .linear import Linear

__all__ = [
    "FeatureAttention",
    "TemporalAttention",
    "BahdanauAttention",
    "LuongAttention",
]


class FeatureAttention(Module):
    """Elementwise feature gating — the paper's eqs. (7)-(8).

    ``a = f_phi(z)`` is a single affine layer followed by a normalizer:
    ``softmax`` makes the weights compete (sum to one across features,
    scaled back by the feature count so magnitudes are preserved), while
    ``sigmoid`` gates each feature independently.
    """

    def __init__(
        self,
        features: int,
        normalizer: str = "softmax",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if normalizer not in ("softmax", "sigmoid"):
            raise ValueError(f"normalizer must be 'softmax' or 'sigmoid', got {normalizer!r}")
        self.features = features
        self.normalizer = normalizer
        self.score = Linear(features, features, rng=rng)

    def forward(self, z: Tensor) -> Tensor:
        scores = self.score(z)
        if self.normalizer == "softmax":
            a = F.softmax(scores, axis=-1) * float(self.features)
        else:
            a = scores.sigmoid() * 2.0
        return a * z

    def attention_weights(self, z: Tensor) -> np.ndarray:
        """Return the (detached) attention vector ``a`` for inspection."""
        scores = self.score(z)
        if self.normalizer == "softmax":
            return F.softmax(scores, axis=-1).data * float(self.features)
        return scores.sigmoid().data * 2.0

    def __repr__(self) -> str:  # pragma: no cover
        return f"FeatureAttention(features={self.features}, normalizer={self.normalizer})"


class TemporalAttention(Module):
    """Attention over the time axis of a ``(N, T, C)`` sequence.

    Scores each step with a small MLP, softmaxes over T, and returns the
    weighted sum ``(N, C)`` — a context vector emphasizing the time steps
    most relevant to the prediction (the short-term dependence the paper's
    horizontal expansion is designed to strengthen).
    """

    def __init__(self, channels: int, hidden: int = 16, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        self.channels = channels
        self.proj = Linear(channels, hidden, rng=rng)
        self.score = Linear(hidden, 1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        e = self.score(self.proj(x).tanh())  # (N, T, 1)
        alpha = F.softmax(e, axis=1)
        return (alpha * x).sum(axis=1)

    def attention_weights(self, x: Tensor) -> np.ndarray:
        e = self.score(self.proj(x).tanh())
        return F.softmax(e, axis=1).data[..., 0]

    def __repr__(self) -> str:  # pragma: no cover
        return f"TemporalAttention(channels={self.channels})"


class BahdanauAttention(Module):
    """Additive attention (Bahdanau et al. 2015).

    ``score(h_t, q) = v^T tanh(W_h h_t + W_q q)`` over keys ``(N, T, C)``
    and a query ``(N, Q)``; returns the context vector ``(N, C)``.
    """

    def __init__(
        self,
        key_size: int,
        query_size: int,
        hidden: int = 32,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.w_key = Linear(key_size, hidden, bias=False, rng=rng)
        self.w_query = Linear(query_size, hidden, bias=False, rng=rng)
        self.v = Linear(hidden, 1, bias=False, rng=rng)

    def forward(self, keys: Tensor, query: Tensor) -> Tensor:
        q = self.w_query(query).reshape(query.shape[0], 1, -1)
        e = self.v((self.w_key(keys) + q).tanh())  # (N, T, 1)
        alpha = F.softmax(e, axis=1)
        return (alpha * keys).sum(axis=1)

    def __repr__(self) -> str:  # pragma: no cover
        return "BahdanauAttention()"


class LuongAttention(Module):
    """Multiplicative attention (Luong et al. 2015), dot or general form."""

    def __init__(
        self,
        key_size: int,
        query_size: int | None = None,
        mode: str = "dot",
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if mode not in ("dot", "general"):
            raise ValueError(f"mode must be 'dot' or 'general', got {mode!r}")
        if mode == "dot" and query_size not in (None, key_size):
            raise ValueError("dot attention requires query_size == key_size")
        self.mode = mode
        self.w = (
            Linear(query_size or key_size, key_size, bias=False, rng=rng)
            if mode == "general"
            else None
        )

    def forward(self, keys: Tensor, query: Tensor) -> Tensor:
        q = self.w(query) if self.w is not None else query
        q3 = q.reshape(q.shape[0], -1, 1)  # (N, C, 1)
        e = keys @ q3  # (N, T, 1)
        alpha = F.softmax(e, axis=1)
        return (alpha * keys).sum(axis=1)

    def __repr__(self) -> str:  # pragma: no cover
        return f"LuongAttention(mode={self.mode})"
