"""Neural-network layers built on the :mod:`repro.nn` autograd engine."""

from .activations import ELU, GELU, LeakyReLU, ReLU, Sigmoid, Softmax, Tanh
from .attention import (
    BahdanauAttention,
    FeatureAttention,
    LuongAttention,
    TemporalAttention,
)
from .container import ModuleList, Sequential
from .conv import CausalConv1d, Conv1d
from .dropout import Dropout, SpatialDropout1d
from .flatten import Flatten, Lambda
from .linear import Linear
from .normalization import BatchNorm1d, LayerNorm, WeightNormConv1d
from .pooling import AvgPool1d, GlobalAvgPool1d, MaxPool1d
from .recurrent import GRU, LSTM, GRUCell, LSTMCell
from .transformer import (
    MultiHeadSelfAttention,
    TransformerEncoderBlock,
    positional_encoding,
)

__all__ = [
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Softmax",
    "LeakyReLU",
    "ELU",
    "GELU",
    "FeatureAttention",
    "TemporalAttention",
    "BahdanauAttention",
    "LuongAttention",
    "Sequential",
    "ModuleList",
    "Conv1d",
    "CausalConv1d",
    "Dropout",
    "SpatialDropout1d",
    "Flatten",
    "Lambda",
    "Linear",
    "LayerNorm",
    "BatchNorm1d",
    "WeightNormConv1d",
    "MaxPool1d",
    "AvgPool1d",
    "GlobalAvgPool1d",
    "LSTM",
    "LSTMCell",
    "GRU",
    "GRUCell",
    "MultiHeadSelfAttention",
    "TransformerEncoderBlock",
    "positional_encoding",
]
