"""Elementwise activation layers."""

from __future__ import annotations

import math

import numpy as np

from .. import functional as F
from ..module import Module
from ..tensor import Tensor

__all__ = ["ReLU", "Sigmoid", "Tanh", "Softmax", "LeakyReLU", "ELU", "GELU"]


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def __repr__(self) -> str:  # pragma: no cover
        return "ReLU()"


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()

    def __repr__(self) -> str:  # pragma: no cover
        return "Sigmoid()"


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()

    def __repr__(self) -> str:  # pragma: no cover
        return "Tanh()"


class Softmax(Module):
    def __init__(self, axis: int = -1) -> None:
        super().__init__()
        self.axis = axis

    def forward(self, x: Tensor) -> Tensor:
        return F.softmax(x, axis=self.axis)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Softmax(axis={self.axis})"


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return Tensor.where(x.data > 0, x, x * self.negative_slope)

    def __repr__(self) -> str:  # pragma: no cover
        return f"LeakyReLU(slope={self.negative_slope})"


class ELU(Module):
    def __init__(self, alpha: float = 1.0) -> None:
        super().__init__()
        self.alpha = alpha

    def forward(self, x: Tensor) -> Tensor:
        return Tensor.where(x.data > 0, x, (x.exp() - 1.0) * self.alpha)

    def __repr__(self) -> str:  # pragma: no cover
        return f"ELU(alpha={self.alpha})"


class GELU(Module):
    """Tanh approximation of the Gaussian Error Linear Unit."""

    _C = math.sqrt(2.0 / math.pi)

    def forward(self, x: Tensor) -> Tensor:
        inner = (x + x * x * x * 0.044715) * self._C
        return x * (inner.tanh() + 1.0) * 0.5

    def __repr__(self) -> str:  # pragma: no cover
        return "GELU()"
