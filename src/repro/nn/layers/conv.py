"""1-D convolutions, including the causal dilated form used by TCNs.

The paper's eq. (3) (causal convolution) and eq. (4) (dilated convolution)
are realized by :class:`CausalConv1d`: left-only zero padding of
``(K - 1) * d`` keeps the output aligned with the input so that position
``t`` of the output depends only on inputs ``<= t`` — "future information
does not leak into the past".
"""

from __future__ import annotations

import numpy as np

from .. import functional as F
from .. import init
from ..module import Module, Parameter
from ..tensor import Tensor

__all__ = ["Conv1d", "CausalConv1d"]


class Conv1d(Module):
    """Standard 1-D convolution over ``(N, C, L)`` inputs.

    Weight layout is ``(out_channels, in_channels, kernel_size)``; He-uniform
    init suits the ReLU nonlinearities used throughout the TCN stack.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int | tuple[int, int] = 0,
        dilation: int = 1,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if kernel_size < 1:
            raise ValueError(f"kernel_size must be >= 1, got {kernel_size}")
        if dilation < 1:
            raise ValueError(f"dilation must be >= 1, got {dilation}")
        rng = rng if rng is not None else init.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.dilation = dilation
        self.weight = Parameter(init.he_uniform((out_channels, in_channels, kernel_size), rng))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    @property
    def receptive_field(self) -> int:
        """Paper: ``(K - 1) * d + 1``."""
        return (self.kernel_size - 1) * self.dilation + 1

    def forward(self, x: Tensor) -> Tensor:
        return F.conv1d(
            x,
            self.weight,
            self.bias,
            stride=self.stride,
            padding=self.padding,
            dilation=self.dilation,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Conv1d({self.in_channels}, {self.out_channels}, k={self.kernel_size}, "
            f"stride={self.stride}, pad={self.padding}, dilation={self.dilation})"
        )


class CausalConv1d(Conv1d):
    """Dilated causal convolution: output length equals input length.

    Pads ``(kernel_size - 1) * dilation`` zeros on the left only, so the
    value at output step ``t`` is a function of input steps ``t, t-d, ...,
    t-(K-1)d`` exactly as in the paper's eq. (4).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        dilation: int = 1,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        left_pad = (kernel_size - 1) * dilation
        super().__init__(
            in_channels,
            out_channels,
            kernel_size,
            stride=1,
            padding=(left_pad, 0),
            dilation=dilation,
            bias=bias,
            rng=rng,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CausalConv1d({self.in_channels}, {self.out_channels}, "
            f"k={self.kernel_size}, dilation={self.dilation})"
        )
