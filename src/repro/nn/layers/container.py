"""Module containers."""

from __future__ import annotations

from typing import Iterable, Iterator

from ..module import Module
from ..tensor import Tensor

__all__ = ["Sequential", "ModuleList"]


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        for i, m in enumerate(modules):
            self.register_module(str(i), m)

    def forward(self, x: Tensor) -> Tensor:
        for m in self._modules.values():
            x = m(x)
        return x

    def append(self, module: Module) -> "Sequential":
        self.register_module(str(len(self._modules)), module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, idx: int) -> Module:
        return list(self._modules.values())[idx]


class ModuleList(Module):
    """List of sub-modules registered for parameter traversal."""

    def __init__(self, modules: Iterable[Module] = ()) -> None:
        super().__init__()
        for m in modules:
            self.append(m)

    def append(self, module: Module) -> "ModuleList":
        self.register_module(str(len(self._modules)), module)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules.values())

    def __len__(self) -> int:
        return len(self._modules)

    def __getitem__(self, idx: int) -> Module:
        return list(self._modules.values())[idx]

    def forward(self, *args, **kwargs):  # pragma: no cover - containers aren't callable
        raise RuntimeError("ModuleList is a container and cannot be called")
