"""Dropout regularization layers."""

from __future__ import annotations

import numpy as np

from .. import functional as F
from .. import init
from ..module import Module
from ..tensor import Tensor

__all__ = ["Dropout", "SpatialDropout1d"]


class Dropout(Module):
    """Inverted elementwise dropout (identity in eval mode)."""

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng if rng is not None else init.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.rng, training=self.training)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Dropout(p={self.p})"


class SpatialDropout1d(Module):
    """Whole-channel dropout for ``(N, C, L)`` feature maps.

    This is the regularizer inside TCN residual blocks (paper Fig. 6):
    dropping entire channels avoids destroying the within-channel temporal
    structure that the dilated convolutions rely on.
    """

    def __init__(self, p: float = 0.1, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng if rng is not None else init.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.spatial_dropout1d(x, self.p, self.rng, training=self.training)

    def __repr__(self) -> str:  # pragma: no cover
        return f"SpatialDropout1d(p={self.p})"
