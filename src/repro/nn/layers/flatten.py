"""Shape-adapter layers."""

from __future__ import annotations

from typing import Callable

from ..module import Module
from ..tensor import Tensor

__all__ = ["Flatten", "Lambda"]


class Flatten(Module):
    """Flatten all axes from ``start_axis`` onward (batch axis kept)."""

    def __init__(self, start_axis: int = 1) -> None:
        super().__init__()
        self.start_axis = start_axis

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten_from(self.start_axis)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Flatten(start_axis={self.start_axis})"


class Lambda(Module):
    """Wrap an arbitrary Tensor -> Tensor function as a (parameter-free) layer."""

    def __init__(self, fn: Callable[[Tensor], Tensor], name: str = "") -> None:
        super().__init__()
        self.fn = fn
        self.fn_name = name or getattr(fn, "__name__", "lambda")

    def forward(self, x: Tensor) -> Tensor:
        return self.fn(x)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Lambda({self.fn_name})"
