"""Fully connected layer — the paper's eq. (6): ``y = Wx + b``."""

from __future__ import annotations

import numpy as np

from .. import functional as F
from .. import init
from ..module import Module, Parameter
from ..tensor import Tensor

__all__ = ["Linear"]


class Linear(Module):
    """Affine transformation applied to the last axis of the input.

    Parameters
    ----------
    in_features, out_features:
        Width of the input / output feature axis.
    bias:
        Whether to learn an additive offset.
    rng:
        Generator used for Glorot-uniform weight init (reproducibility).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else init.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.glorot_uniform((out_features, in_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"Linear expected last dim {self.in_features}, got input shape {x.shape}"
            )
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Linear(in={self.in_features}, out={self.out_features}, "
            f"bias={self.bias is not None})"
        )
