"""Recurrent layers (LSTM / GRU) with backprop-through-time via autograd.

These power the paper's LSTM and CNN-LSTM baselines. Gates are computed
with a single fused matmul per step (weights for all four LSTM gates are
stacked), and the time loop builds an autograd chain that
:meth:`Tensor.backward` unrolls iteratively (no recursion-depth hazards).
"""

from __future__ import annotations

import numpy as np

from .. import init
from ..module import Module, Parameter
from ..tensor import Tensor

__all__ = ["LSTMCell", "LSTM", "GRUCell", "GRU"]


class LSTMCell(Module):
    """Single LSTM step.

    Gate layout in the stacked weight matrices is ``[i, f, g, o]``
    (input, forget, cell candidate, output). The forget-gate bias is
    initialized to 1, the standard trick for gradient flow early in
    training (Jozefowicz et al. 2015).
    """

    def __init__(
        self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_ih = Parameter(init.glorot_uniform((4 * hidden_size, input_size), rng))
        self.w_hh = Parameter(init.orthogonal((4 * hidden_size, hidden_size), rng))
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size : 2 * hidden_size] = 1.0  # forget gate
        self.bias = Parameter(bias)

    def forward(
        self, x: Tensor, state: tuple[Tensor, Tensor] | None = None
    ) -> tuple[Tensor, Tensor]:
        n = x.shape[0]
        h_size = self.hidden_size
        if state is None:
            h = Tensor(np.zeros((n, h_size)))
            c = Tensor(np.zeros((n, h_size)))
        else:
            h, c = state

        gates = x @ self.w_ih.T + h @ self.w_hh.T + self.bias
        i = gates[:, 0:h_size].sigmoid()
        f = gates[:, h_size : 2 * h_size].sigmoid()
        g = gates[:, 2 * h_size : 3 * h_size].tanh()
        o = gates[:, 3 * h_size : 4 * h_size].sigmoid()
        c_next = f * c + i * g
        h_next = o * c_next.tanh()
        return h_next, c_next

    def __repr__(self) -> str:  # pragma: no cover
        return f"LSTMCell({self.input_size}, {self.hidden_size})"


class LSTM(Module):
    """Multi-layer LSTM over ``(N, T, F)`` sequences.

    Returns the full hidden sequence ``(N, T, H)`` of the top layer; use
    ``outputs[:, -1]`` for a sequence-to-one head.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        num_layers: int = 1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        from .container import ModuleList

        self.cells = ModuleList(
            LSTMCell(input_size if layer == 0 else hidden_size, hidden_size, rng=rng)
            for layer in range(num_layers)
        )

    def forward(
        self, x: Tensor, state: list[tuple[Tensor, Tensor]] | None = None
    ) -> Tensor:
        n, t, _ = x.shape
        states: list[tuple[Tensor, Tensor] | None]
        states = list(state) if state is not None else [None] * self.num_layers

        layer_input = [x[:, step, :] for step in range(t)]
        for li, cell in enumerate(self.cells):
            st = states[li]
            outputs = []
            for step_x in layer_input:
                h, c = cell(step_x, st)
                st = (h, c)
                outputs.append(h)
            layer_input = outputs
        return Tensor.stack(layer_input, axis=1)

    def __repr__(self) -> str:  # pragma: no cover
        return f"LSTM({self.input_size}, {self.hidden_size}, layers={self.num_layers})"


class GRUCell(Module):
    """Single GRU step; gate layout is ``[r, z, n]`` (reset, update, new)."""

    def __init__(
        self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_ih = Parameter(init.glorot_uniform((3 * hidden_size, input_size), rng))
        self.w_hh = Parameter(init.orthogonal((3 * hidden_size, hidden_size), rng))
        self.b_ih = Parameter(init.zeros((3 * hidden_size,)))
        self.b_hh = Parameter(init.zeros((3 * hidden_size,)))

    def forward(self, x: Tensor, h: Tensor | None = None) -> Tensor:
        n = x.shape[0]
        hs = self.hidden_size
        if h is None:
            h = Tensor(np.zeros((n, hs)))
        gi = x @ self.w_ih.T + self.b_ih
        gh = h @ self.w_hh.T + self.b_hh
        r = (gi[:, 0:hs] + gh[:, 0:hs]).sigmoid()
        z = (gi[:, hs : 2 * hs] + gh[:, hs : 2 * hs]).sigmoid()
        new = (gi[:, 2 * hs : 3 * hs] + r * gh[:, 2 * hs : 3 * hs]).tanh()
        return (1.0 - z) * new + z * h

    def __repr__(self) -> str:  # pragma: no cover
        return f"GRUCell({self.input_size}, {self.hidden_size})"


class GRU(Module):
    """Multi-layer GRU over ``(N, T, F)`` sequences; returns ``(N, T, H)``."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        num_layers: int = 1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        from .container import ModuleList

        self.cells = ModuleList(
            GRUCell(input_size if layer == 0 else hidden_size, hidden_size, rng=rng)
            for layer in range(num_layers)
        )

    def forward(self, x: Tensor) -> Tensor:
        n, t, _ = x.shape
        layer_input = [x[:, step, :] for step in range(t)]
        for cell in self.cells:
            h: Tensor | None = None
            outputs = []
            for step_x in layer_input:
                h = cell(step_x, h)
                outputs.append(h)
            layer_input = outputs
        return Tensor.stack(layer_input, axis=1)

    def __repr__(self) -> str:  # pragma: no cover
        return f"GRU({self.input_size}, {self.hidden_size}, layers={self.num_layers})"
