"""Recurrent layers (LSTM / GRU) with backprop-through-time via autograd.

These power the paper's LSTM and CNN-LSTM baselines. The LSTM sequence
layer runs on the fused kernel in :func:`repro.nn.functional.lstm`: one
gate GEMM over the whole ``(N, T, C)`` input, a NumPy-only recurrent loop,
and a hand-written BPTT backward — no per-step Tensor allocation. The
cells remain available for explicit single-step (online/stateful) use and
as the stepwise reference the parity tests check the fused kernel against.
"""

from __future__ import annotations

import numpy as np

from .. import functional as F
from .. import init
from ..module import Module, Parameter
from ..tensor import Tensor

__all__ = ["LSTMCell", "LSTM", "GRUCell", "GRU"]


class LSTMCell(Module):
    """Single LSTM step.

    Gate layout in the stacked weight matrices is ``[i, f, g, o]``
    (input, forget, cell candidate, output). The forget-gate bias is
    initialized to 1, the standard trick for gradient flow early in
    training (Jozefowicz et al. 2015).
    """

    def __init__(
        self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else init.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_ih = Parameter(init.glorot_uniform((4 * hidden_size, input_size), rng))
        self.w_hh = Parameter(init.orthogonal((4 * hidden_size, hidden_size), rng))
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size : 2 * hidden_size] = 1.0  # forget gate
        self.bias = Parameter(bias)

    def forward(
        self, x: Tensor, state: tuple[Tensor, Tensor] | None = None
    ) -> tuple[Tensor, Tensor]:
        n = x.shape[0]
        h_size = self.hidden_size
        if state is None:
            h = Tensor(np.zeros((n, h_size)))
            c = Tensor(np.zeros((n, h_size)))
        else:
            h, c = state

        gates = x @ self.w_ih.T + h @ self.w_hh.T + self.bias
        i = gates[:, 0:h_size].sigmoid()
        f = gates[:, h_size : 2 * h_size].sigmoid()
        g = gates[:, 2 * h_size : 3 * h_size].tanh()
        o = gates[:, 3 * h_size : 4 * h_size].sigmoid()
        c_next = f * c + i * g
        h_next = o * c_next.tanh()
        return h_next, c_next

    def __repr__(self) -> str:  # pragma: no cover
        return f"LSTMCell({self.input_size}, {self.hidden_size})"


class LSTM(Module):
    """Multi-layer LSTM over ``(N, T, F)`` sequences.

    Returns the full hidden sequence ``(N, T, H)`` of the top layer; use
    ``outputs[:, -1]`` for a sequence-to-one head. Each layer is one call
    into the fused sequence kernel.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        num_layers: int = 1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else init.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        from .container import ModuleList

        self.cells = ModuleList(
            LSTMCell(input_size if layer == 0 else hidden_size, hidden_size, rng=rng)
            for layer in range(num_layers)
        )

    def forward(
        self, x: Tensor, state: list[tuple[Tensor, Tensor]] | None = None
    ) -> Tensor:
        states: list[tuple[Tensor, Tensor] | None]
        states = list(state) if state is not None else [None] * self.num_layers
        out = x
        for li, cell in enumerate(self.cells):
            out = F.lstm(out, cell.w_ih, cell.w_hh, cell.bias, state=states[li])
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return f"LSTM({self.input_size}, {self.hidden_size}, layers={self.num_layers})"


class GRUCell(Module):
    """Single GRU step; gate layout is ``[r, z, n]`` (reset, update, new)."""

    def __init__(
        self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else init.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_ih = Parameter(init.glorot_uniform((3 * hidden_size, input_size), rng))
        self.w_hh = Parameter(init.orthogonal((3 * hidden_size, hidden_size), rng))
        self.b_ih = Parameter(init.zeros((3 * hidden_size,)))
        self.b_hh = Parameter(init.zeros((3 * hidden_size,)))

    def _step(self, gi: Tensor, h: Tensor) -> Tensor:
        """Recurrent half of the step, given the precomputed input projection."""
        hs = self.hidden_size
        gh = h @ self.w_hh.T + self.b_hh
        r = (gi[:, 0:hs] + gh[:, 0:hs]).sigmoid()
        z = (gi[:, hs : 2 * hs] + gh[:, hs : 2 * hs]).sigmoid()
        new = (gi[:, 2 * hs : 3 * hs] + r * gh[:, 2 * hs : 3 * hs]).tanh()
        return (1.0 - z) * new + z * h

    def forward(self, x: Tensor, h: Tensor | None = None) -> Tensor:
        n = x.shape[0]
        if h is None:
            h = Tensor(np.zeros((n, self.hidden_size)))
        gi = x @ self.w_ih.T + self.b_ih
        return self._step(gi, h)

    def __repr__(self) -> str:  # pragma: no cover
        return f"GRUCell({self.input_size}, {self.hidden_size})"


class GRU(Module):
    """Multi-layer GRU over ``(N, T, F)`` sequences; returns ``(N, T, H)``.

    The input projection ``x @ W_ih.T + b_ih`` for all steps of a layer is
    hoisted out of the time loop into one GEMM; only the reset/update
    recurrence steps through time.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        num_layers: int = 1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else init.default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        from .container import ModuleList

        self.cells = ModuleList(
            GRUCell(input_size if layer == 0 else hidden_size, hidden_size, rng=rng)
            for layer in range(num_layers)
        )

    def forward(self, x: Tensor) -> Tensor:
        n, t, _ = x.shape
        out = x
        for cell in self.cells:
            hs = cell.hidden_size
            gi_seq = (
                out.reshape(n * t, out.shape[-1]) @ cell.w_ih.T + cell.b_ih
            ).reshape(n, t, 3 * hs)
            h = Tensor(np.zeros((n, hs), dtype=out.data.dtype))
            outputs = []
            for step in range(t):
                h = cell._step(gi_seq[:, step, :], h)
                outputs.append(h)
            out = Tensor.stack(outputs, axis=1)
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return f"GRU({self.input_size}, {self.hidden_size}, layers={self.num_layers})"
