"""Reverse-mode automatic differentiation over NumPy arrays.

This module is the foundation of the :mod:`repro.nn` framework: a
:class:`Tensor` wraps an ``np.ndarray`` and records the operations applied
to it so that :meth:`Tensor.backward` can propagate gradients through the
computation graph with a single topological sweep.

The implementation follows the vectorization idioms of the scientific-Python
optimization guide: every backward rule is expressed as whole-array NumPy
operations (broadcast-aware reductions, ``einsum``/``matmul`` contractions,
``np.add.at`` scatter-adds) — there are no per-element Python loops on the
hot path.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "set_default_dtype",
    "get_default_dtype",
    "dtype_policy",
]

# ---------------------------------------------------------------------------
# global autograd switch (mirrors torch.no_grad semantics)
# ---------------------------------------------------------------------------

_GRAD_ENABLED = True


class no_grad:
    """Context manager that disables graph construction.

    Inside the context every new :class:`Tensor` op produces a constant
    (``requires_grad=False``) result, which keeps inference cheap and
    allocation-free beyond the raw NumPy work.
    """

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def is_grad_enabled() -> bool:
    """Return whether autograd graph recording is currently active."""
    return _GRAD_ENABLED


# ---------------------------------------------------------------------------
# dtype policy
# ---------------------------------------------------------------------------

# float64 is the training default (tight finite-difference gradient checks);
# serving paths can opt into float32 for half the memory traffic.
_DEFAULT_DTYPE = np.dtype(np.float64)
_ALLOWED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))


def set_default_dtype(dtype) -> None:
    """Set the dtype new Tensors are materialized in (float32 or float64)."""
    global _DEFAULT_DTYPE
    dt = np.dtype(dtype)
    if dt not in _ALLOWED_DTYPES:
        raise ValueError(f"default dtype must be float32 or float64, got {dt}")
    _DEFAULT_DTYPE = dt


def get_default_dtype() -> np.dtype:
    """The dtype used when coercing raw data into Tensors."""
    return _DEFAULT_DTYPE


class dtype_policy:
    """Context manager that temporarily switches the default Tensor dtype.

    ``with dtype_policy(np.float32): ...`` is the serving configuration:
    inputs are materialized in single precision, halving memory bandwidth
    on the inference fast paths (pair with :meth:`Module.to_dtype`).
    """

    def __init__(self, dtype) -> None:
        self._dtype = dtype

    def __enter__(self) -> "dtype_policy":
        self._prev = get_default_dtype()
        set_default_dtype(self._dtype)
        return self

    def __exit__(self, *exc) -> None:
        set_default_dtype(self._prev)


# ---------------------------------------------------------------------------
# broadcasting helpers
# ---------------------------------------------------------------------------


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so its shape matches ``shape``.

    NumPy broadcasting may have expanded an operand along leading axes or
    along singleton dimensions; the adjoint of broadcasting is summation
    over exactly those axes.
    """
    if grad.shape == shape:
        return grad
    # sum over extra leading axes
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # sum over broadcast singleton axes
    axes = tuple(i for i, (g, s) in enumerate(zip(grad.shape, shape)) if s == 1 and g != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _as_array(value) -> np.ndarray:
    arr = np.asarray(value, dtype=_DEFAULT_DTYPE)
    return arr


_BASIC_INDEX_TYPES = (int, np.integer, slice, type(None), type(Ellipsis))


def _is_basic_index(idx) -> bool:
    """True when ``idx`` is pure basic indexing (ints/slices/None/Ellipsis).

    Basic indexing selects each source element at most once, so the adjoint
    is plain slice assignment — no ``np.add.at`` scatter needed.
    """
    if isinstance(idx, tuple):
        return all(isinstance(i, _BASIC_INDEX_TYPES) for i in idx)
    return isinstance(idx, _BASIC_INDEX_TYPES)


# ---------------------------------------------------------------------------
# Tensor
# ---------------------------------------------------------------------------


class Tensor:
    """A NumPy-backed array with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Anything convertible to ``np.ndarray`` (float64 is used throughout —
        forecasting workloads are tiny compared to vision, and double
        precision makes the finite-difference gradient checks tight).
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` when
        :meth:`backward` is called on a downstream scalar.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(self, data, requires_grad: bool = False, name: str = "") -> None:
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # -- construction helpers ------------------------------------------------

    @staticmethod
    def _from_op(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Build the result Tensor of an op, wiring the graph if needed."""
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=False)
        out.requires_grad = requires
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    @staticmethod
    def ensure(value) -> "Tensor":
        """Coerce ``value`` to a Tensor (constants get ``requires_grad=False``)."""
        return value if isinstance(value, Tensor) else Tensor(value)

    # -- basic introspection ---------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (a view, not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new Tensor sharing data but cut out of the graph."""
        out = Tensor(0.0)
        out.data = self.data
        out.requires_grad = False
        return out

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    # -- gradient accumulation -------------------------------------------------

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            # always copy: the incoming buffer may be a view of (or alias)
            # another node's gradient, and we mutate self.grad in place below
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (a scalar loss passes ``None``). Gradients
        accumulate into ``.grad`` of every reachable leaf with
        ``requires_grad=True``.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be supplied for non-scalar backward()")
            grad = np.ones_like(self.data)
        grad = _as_array(grad)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).copy()

        # iterative topological order (avoids recursion limits on long BPTT chains)
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for p in node._parents:
                if p.requires_grad and id(p) not in visited:
                    stack.append((p, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)
                # interior nodes don't need to retain grad; free memory eagerly
                if node._parents and node is not self:
                    node.grad = None

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other) -> "Tensor":
        other = Tensor.ensure(other)
        data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.data.shape))

        return Tensor._from_op(data, (self, other), backward)

    __radd__ = __add__

    def __mul__(self, other) -> "Tensor":
        other = Tensor.ensure(other)
        data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.data.shape))

        return Tensor._from_op(data, (self, other), backward)

    __rmul__ = __mul__

    def __sub__(self, other) -> "Tensor":
        other = Tensor.ensure(other)
        data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(-grad, other.data.shape))

        return Tensor._from_op(data, (self, other), backward)

    def __rsub__(self, other) -> "Tensor":
        return Tensor.ensure(other) - self

    def __truediv__(self, other) -> "Tensor":
        other = Tensor.ensure(other)
        data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad / other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(
                    _unbroadcast(-grad * self.data / (other.data**2), other.data.shape)
                )

        return Tensor._from_op(data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor.ensure(other) / self

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-grad)

        return Tensor._from_op(data, (self,), backward)

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp(log(x) * y)")
        data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._from_op(data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = Tensor.ensure(other)
        data = self.data @ other.data

        a, b = self, other

        def backward(grad: np.ndarray) -> None:
            # handle the 1-D corner cases of np.matmul explicitly
            ad, bd = a.data, b.data
            if a.requires_grad:
                if ad.ndim == 1 and bd.ndim == 1:
                    ga = grad * bd
                elif ad.ndim == 1:
                    ga = (np.expand_dims(grad, -2) @ np.swapaxes(bd, -1, -2)).reshape(ad.shape)
                elif bd.ndim == 1:
                    ga = np.expand_dims(grad, -1) @ np.expand_dims(bd, 0)
                else:
                    ga = grad @ np.swapaxes(bd, -1, -2)
                a._accumulate(_unbroadcast(ga, ad.shape))
            if b.requires_grad:
                if ad.ndim == 1 and bd.ndim == 1:
                    gb = grad * ad
                elif bd.ndim == 1:
                    gb = (np.swapaxes(ad, -1, -2) @ np.expand_dims(grad, -1)).reshape(bd.shape)
                elif ad.ndim == 1:
                    gb = np.expand_dims(ad, -1) @ np.expand_dims(grad, -2)
                else:
                    gb = np.swapaxes(ad, -1, -2) @ grad
                b._accumulate(_unbroadcast(gb, bd.shape))

        return Tensor._from_op(data, (self, other), backward)

    def __rmatmul__(self, other) -> "Tensor":
        return Tensor.ensure(other) @ self

    # -- comparisons (produce plain bool arrays; not differentiable) ---------

    def __gt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data > other

    def __lt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data < other

    def __ge__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data >= other

    def __le__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data <= other

    # -- elementwise nonlinearities -----------------------------------------

    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data)

        return Tensor._from_op(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return Tensor._from_op(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * 0.5 / data)

        return Tensor._from_op(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * (1.0 - data**2))

        return Tensor._from_op(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        # numerically stable logistic: exp(-|x|) never overflows, and the
        # where-branches are the exact piecewise expressions (no fancy
        # indexing, which costs more than the arithmetic at these sizes)
        x = self.data
        ex = np.exp(-np.abs(x))
        data = np.where(x >= 0, 1.0 / (1.0 + ex), ex / (1.0 + ex))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * data * (1.0 - data))

        return Tensor._from_op(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = np.where(mask, self.data, 0.0)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._from_op(data, (self,), backward)

    def abs(self) -> "Tensor":
        data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * np.sign(self.data))

        return Tensor._from_op(data, (self,), backward)

    def clip(self, lo: float, hi: float) -> "Tensor":
        data = np.clip(self.data, lo, hi)
        mask = (self.data >= lo) & (self.data <= hi)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad * mask)

        return Tensor._from_op(data, (self,), backward)

    # -- reductions ----------------------------------------------------------

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)
        in_shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % len(in_shape) for a in axes)
                shape = tuple(1 if i in axes else s for i, s in enumerate(in_shape))
                g = g.reshape(shape)
            self._accumulate(np.broadcast_to(g, in_shape).copy())

        return Tensor._from_op(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)
        in_shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            g = grad
            d = data
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % len(in_shape) for a in axes)
                shape = tuple(1 if i in axes else s for i, s in enumerate(in_shape))
                g = g.reshape(shape)
                d = d.reshape(shape)
            elif axis is None and not keepdims:
                g = np.asarray(g).reshape((1,) * len(in_shape))
                d = np.asarray(d).reshape((1,) * len(in_shape))
            mask = self.data == d
            # split gradient equally among ties (matches subgradient convention)
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(np.where(mask, g / counts, 0.0))

        return Tensor._from_op(data, (self,), backward)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -((-self).max(axis=axis, keepdims=keepdims))

    # -- shape manipulation ----------------------------------------------------

    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        in_shape = self.data.shape
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.reshape(in_shape))

        return Tensor._from_op(data, (self,), backward)

    def flatten_from(self, start_axis: int = 1) -> "Tensor":
        """Flatten all axes from ``start_axis`` onward (Keras Flatten)."""
        new_shape = self.data.shape[:start_axis] + (-1,)
        return self.reshape(*new_shape)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        data = self.data.transpose(axes)
        inverse = tuple(np.argsort(axes))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return Tensor._from_op(data, (self,), backward)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.data.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(*axes)

    def __getitem__(self, idx) -> "Tensor":
        data = self.data[idx]
        basic = _is_basic_index(idx)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data)
                if basic:
                    full[idx] = grad
                else:
                    np.add.at(full, idx, grad)
                self._accumulate(full)

        return Tensor._from_op(data, (self,), backward)

    def pad(self, pad_width) -> "Tensor":
        """Zero-pad; ``pad_width`` follows ``np.pad`` conventions."""
        data = np.pad(self.data, pad_width)
        slices = tuple(
            slice(before, before + dim)
            for (before, _), dim in zip(pad_width, self.data.shape)
        )

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(grad[slices])

        return Tensor._from_op(data, (self,), backward)

    # -- static combinators ----------------------------------------------------

    @staticmethod
    def concatenate(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor.ensure(t) for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
                if t.requires_grad:
                    idx = [slice(None)] * grad.ndim
                    idx[axis] = slice(start, stop)
                    t._accumulate(grad[tuple(idx)])

        return Tensor._from_op(data, tensors, backward)

    @staticmethod
    def stack(tensors: Iterable["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [Tensor.ensure(t) for t in tensors]
        data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad: np.ndarray) -> None:
            moved = np.moveaxis(grad, axis, 0)
            for t, g in zip(tensors, moved):
                if t.requires_grad:
                    t._accumulate(g)

        return Tensor._from_op(data, tensors, backward)

    @staticmethod
    def where(condition: np.ndarray, a: "Tensor", b: "Tensor") -> "Tensor":
        a, b = Tensor.ensure(a), Tensor.ensure(b)
        cond = condition.data if isinstance(condition, Tensor) else np.asarray(condition)
        data = np.where(cond, a.data, b.data)

        def backward(grad: np.ndarray) -> None:
            if a.requires_grad:
                a._accumulate(_unbroadcast(np.where(cond, grad, 0.0), a.data.shape))
            if b.requires_grad:
                b._accumulate(_unbroadcast(np.where(cond, 0.0, grad), b.data.shape))

        return Tensor._from_op(data, (a, b), backward)

    # -- factory methods -------------------------------------------------------

    @staticmethod
    def zeros(*shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape, rng: np.random.Generator | None = None, requires_grad: bool = False) -> "Tensor":
        if rng is None:
            from . import init

            rng = init.default_rng()
        return Tensor(rng.standard_normal(shape), requires_grad=requires_grad)
