"""Weight initialization schemes.

All initializers take an explicit ``np.random.Generator`` so that every
experiment in the benchmark harness is reproducible bit-for-bit from a seed.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "glorot_uniform",
    "glorot_normal",
    "he_uniform",
    "he_normal",
    "orthogonal",
    "uniform",
    "zeros",
    "ones",
    "compute_fans",
    "default_rng",
    "set_default_seed",
]


# ---------------------------------------------------------------------------
# module-level default generator
# ---------------------------------------------------------------------------

# Layers that are constructed without an explicit ``rng`` used to each spin
# up a fresh unseeded ``np.random.default_rng()``, making weight init
# irreproducible unless every call site threaded a generator. Instead they
# now draw from this process-wide seeded generator.

_DEFAULT_SEED = 0
_DEFAULT_RNG: np.random.Generator | None = None


def set_default_seed(seed: int) -> None:
    """(Re)seed the shared generator used when layers get ``rng=None``.

    Calling this resets the stream, so two identical model constructions
    bracketed by the same ``set_default_seed(s)`` produce identical weights.
    """
    global _DEFAULT_SEED, _DEFAULT_RNG
    _DEFAULT_SEED = int(seed)
    _DEFAULT_RNG = np.random.default_rng(_DEFAULT_SEED)


def default_rng() -> np.random.Generator:
    """The shared, seeded fallback generator (seed 0 unless overridden)."""
    global _DEFAULT_RNG
    if _DEFAULT_RNG is None:
        _DEFAULT_RNG = np.random.default_rng(_DEFAULT_SEED)
    return _DEFAULT_RNG


def compute_fans(shape: tuple[int, ...]) -> tuple[int, int]:
    """Return ``(fan_in, fan_out)`` for dense and conv weight shapes.

    Dense weights are ``(out, in)``; conv1d weights are ``(out, in, k)``
    where the receptive field multiplies both fans, matching Keras/PyTorch.
    """
    if len(shape) < 1:
        raise ValueError("weight must have at least 1 dimension")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_out = shape[0] * receptive
    fan_in = shape[1] * receptive
    return fan_in, fan_out


def glorot_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    fan_in, fan_out = compute_fans(shape)
    limit = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def glorot_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    fan_in, fan_out = compute_fans(shape)
    std = math.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape)


def he_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    fan_in, _ = compute_fans(shape)
    limit = math.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def he_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    fan_in, _ = compute_fans(shape)
    std = math.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def orthogonal(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Orthogonal init (used for recurrent kernels, Saxe et al. 2014)."""
    if len(shape) < 2:
        raise ValueError("orthogonal init needs >= 2 dimensions")
    rows = shape[0]
    cols = int(np.prod(shape[1:]))
    flat = rng.normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q *= np.sign(np.diag(r))  # deterministic sign convention
    q = q.T if rows < cols else q
    return gain * q[:rows, :cols].reshape(shape)


def uniform(shape: tuple[int, ...], rng: np.random.Generator, limit: float) -> np.ndarray:
    return rng.uniform(-limit, limit, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape)
