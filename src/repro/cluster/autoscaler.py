"""Autoscaling decision policies: forecasts in, reservations out.

Each tick the simulator hands a policy everything the cluster knows
(:class:`PolicyInputs`) and gets back one reservation per job. Policies
are pure functions of their inputs — all cluster mutation (placement,
migration, consolidation) stays in the simulator — which is what makes
the policy grid comparable: every policy sees the identical trace,
identical placements, identical feedback loop.

The ladder, mirroring :mod:`repro.allocation`'s per-entity policies at
cluster scale:

* ``request`` — never resize; reserve what the owner asked for. The
  no-op baseline: zero violations by construction (usage never exceeds
  the request in this workload model), maximal cost.
* ``reactive`` — last observed utilization plus fixed headroom; what an
  autoscaler does without a model.
* ``predictive`` — fleet point forecast plus the same fixed headroom;
  the paper's predict-then-provision loop.
* ``quantile`` — fleet point forecast plus a per-job *residual-quantile*
  headroom, routed through
  :class:`~repro.allocation.allocator.QuantileAllocator`'s vector path —
  risk-calibrated instead of one-size-fits-all.
* ``oracle`` — true next-tick usage plus the fixed headroom; the lower
  bound at matched safety margin.

**Staleness contract:** any job whose forecast is ``NaN`` (model not
fitted, window not filled, serving failure) is sized by the reactive
rule; any job with no observation yet (it arrives next tick) is sized by
its request. Predictive policies therefore degrade *to* the reactive
baseline, never below it, when predictions are unavailable.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from ..allocation.allocator import QuantileAllocator

__all__ = [
    "PolicyInputs",
    "AutoscalePolicy",
    "RequestPolicy",
    "ReactivePolicy",
    "PredictivePointPolicy",
    "PredictiveQuantilePolicy",
    "OraclePolicy",
    "make_policy",
    "POLICY_NAMES",
]


@dataclass(frozen=True)
class PolicyInputs:
    """Everything a policy may look at when sizing the next tick."""

    #: (n_jobs,) most recent *observed* (throttled) utilization; NaN before
    #: a job's first observation
    last_observed: np.ndarray
    #: (n_jobs,) point forecast of next-tick utilization; NaN = stale
    point: np.ndarray
    #: (n_jobs,) residual-quantile headroom; NaN = uncalibrated
    headroom_q: np.ndarray
    #: (n_jobs,) true next-tick utilization — only the oracle may read it;
    #: NaN where the job will not run next tick
    truth_next: np.ndarray
    #: (n_jobs,) owner-requested capacity (the reservation ceiling)
    request: np.ndarray
    #: (n_jobs,) liveness mask — only active slots are resized
    active: np.ndarray
    #: (n_jobs,) jobs throttled this tick (observed == reservation < demand).
    #: Throttling right-censors the observation stream — the predictor
    #: only sees the clipped value — so policies must treat it as a
    #: grow signal, not as data.
    throttled: np.ndarray


class AutoscalePolicy(abc.ABC):
    """Maps cluster observations to per-job reservations for the next tick."""

    name: str = ""
    #: whether the simulator must run a forecast source for this policy
    needs_forecasts: bool = False
    #: whether the source should also maintain residual-quantile headrooms
    needs_headroom: bool = False

    def __init__(self, headroom: float = 0.06, floor: float = 0.02) -> None:
        if headroom < 0:
            raise ValueError(f"headroom must be non-negative, got {headroom}")
        if floor <= 0:
            raise ValueError(f"floor must be positive, got {floor}")
        self.headroom = headroom
        self.floor = floor

    @abc.abstractmethod
    def reservations(self, obs: PolicyInputs) -> np.ndarray:
        """(n_jobs,) reservations; entries at inactive slots are ignored."""

    def _clip(self, raw: np.ndarray, obs: PolicyInputs) -> np.ndarray:
        """Bound reservations to [floor, request] and patch non-finite slots.

        The request cap means no policy can buy its way out of risk by
        reserving more than the owner asked for; the floor keeps every
        running job schedulable. Slots that are still non-finite after
        the policy's own fallbacks (first tick of a job's life) get their
        request — the safe cold-start.

        Throttled jobs get the *escape* rule: the new reservation must be
        at least the old one plus the fixed headroom. A throttled
        observation is right-censored (the predictor saw demand clipped to
        the reservation), so any model sized from it will look
        well-calibrated while demand silently outruns supply — without the
        escape, calibrated policies death-spiral: throttling shrinks the
        apparent errors, which shrinks the band, which throttles harder.
        Additive-increase until uncensored breaks the loop for every
        policy identically (for the reactive baseline it is a no-op: its
        rule already is last-observed + headroom).
        """
        raw = np.where(
            obs.throttled, np.maximum(raw, obs.last_observed + self.headroom), raw
        )
        raw = np.where(np.isfinite(raw), raw, obs.request)
        return np.clip(raw, self.floor, obs.request)

    def _reactive(self, obs: PolicyInputs) -> np.ndarray:
        """The shared fallback rule: last observation plus fixed headroom."""
        return obs.last_observed + self.headroom


class RequestPolicy(AutoscalePolicy):
    """Never resize: reserve the full request (the no-op baseline)."""

    name = "request"

    def reservations(self, obs: PolicyInputs) -> np.ndarray:
        return self._clip(obs.request.copy(), obs)


class ReactivePolicy(AutoscalePolicy):
    """Last observed utilization plus fixed headroom (model-free)."""

    name = "reactive"

    def reservations(self, obs: PolicyInputs) -> np.ndarray:
        return self._clip(self._reactive(obs), obs)


class PredictivePointPolicy(AutoscalePolicy):
    """Fleet point forecast plus fixed headroom; reactive where stale."""

    name = "predictive"
    needs_forecasts = True

    def reservations(self, obs: PolicyInputs) -> np.ndarray:
        raw = obs.point + self.headroom
        stale = ~np.isfinite(raw)
        if stale.any():
            raw = np.where(stale, self._reactive(obs), raw)
        return self._clip(raw, obs)


class PredictiveQuantilePolicy(AutoscalePolicy):
    """Point forecast plus per-job residual-quantile headroom.

    The quantile vector (forecast + calibrated residual band) goes
    through :class:`QuantileAllocator`'s explicit-vector path, so the
    risk policy is literally the allocation subsystem's — the cluster
    loop adds only the per-job calibration. Jobs whose residual band is
    still uncalibrated use the fixed headroom; stale jobs fall back to
    reactive.
    """

    name = "quantile"
    needs_forecasts = True
    needs_headroom = True

    def __init__(
        self,
        headroom: float = 0.06,
        floor: float = 0.02,
        tau: float = 0.99,
        safety: float = 0.02,
    ) -> None:
        super().__init__(headroom=headroom, floor=floor)
        if safety < 0:
            raise ValueError(f"safety must be non-negative, got {safety}")
        self.tau = tau
        #: additive finite-sample correction on top of the empirical
        #: quantile: the band is estimated from a few hundred censored
        #: residuals, so its own tail is noisy exactly where it matters
        self.safety = safety
        self.allocator = QuantileAllocator(tau=tau)

    def reservations(self, obs: PolicyInputs) -> np.ndarray:
        quantiles = self.allocator.reserve(
            None, None, quantiles=obs.point + obs.headroom_q + self.safety
        )
        # calibrated means BOTH a fresh point forecast and a residual band
        # backed by enough scored predictions; a half-calibrated slot
        # (fresh point, tiny error sample) is sized reactively — an
        # uncalibrated tail quantile is noise, not a risk bound
        stale = ~np.isfinite(quantiles)
        raw = np.where(stale, self._reactive(obs), quantiles)
        return self._clip(raw, obs)


class OraclePolicy(AutoscalePolicy):
    """True next-tick usage plus fixed headroom — perfect foresight."""

    name = "oracle"

    def reservations(self, obs: PolicyInputs) -> np.ndarray:
        raw = obs.truth_next + self.headroom
        # a job departing after this tick has no next-tick truth: hold its
        # last sizing rule (reactive) for the final interval
        stale = ~np.isfinite(raw)
        if stale.any():
            raw = np.where(stale, self._reactive(obs), raw)
        return self._clip(raw, obs)


_POLICIES: dict[str, type[AutoscalePolicy]] = {
    cls.name: cls
    for cls in (
        RequestPolicy,
        ReactivePolicy,
        PredictivePointPolicy,
        PredictiveQuantilePolicy,
        OraclePolicy,
    )
}

#: every registered policy name, baseline -> oracle order
POLICY_NAMES = tuple(_POLICIES)


def make_policy(name: str, **kwargs) -> AutoscalePolicy:
    """Instantiate a registered policy by name."""
    try:
        cls = _POLICIES[name]
    except KeyError:
        raise KeyError(f"unknown policy {name!r}; available: {sorted(_POLICIES)}") from None
    return cls(**kwargs)
