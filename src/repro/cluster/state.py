"""Vectorized machine/job state for the closed-loop cluster simulator.

One :class:`ClusterState` tracks a fixed pool of machines and the whole
population of jobs that will ever visit the cluster. Job-side state
(placement, reservation, liveness) and machine-side state (reserved
capacity, job counts) live in flat NumPy arrays so that every per-tick
operation the simulator needs — resizing all reservations, summing true
demand per machine, finding overcommitted machines — is one vectorized
pass, never a Python loop over jobs.

Placement decisions (admission, rebalancing migrations, consolidation
drains) are loops over the handful of jobs that actually move in a tick,
each step backed by vectorized candidate selection over machines.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ClusterState"]

#: slack below this is float noise when testing fit/overcommit
_FIT_EPS = 1e-9


class ClusterState:
    """Machines hosting jobs, with per-job reservations, in flat arrays.

    Parameters
    ----------
    n_machines:
        Fixed machine pool size; machines are never added, only powered
        on (first job placed) and off (last job leaves).
    n_jobs:
        Total jobs that will ever exist. Job indices are stable for the
        lifetime of the state; inactive slots (not yet admitted, or
        departed) hold placement ``-1`` and reservation ``0``.
    capacity:
        Normalized cores per machine (uniform fleet, as in the paper's
        per-machine utilization framing).
    """

    def __init__(self, n_machines: int, n_jobs: int, capacity: float = 1.0) -> None:
        if n_machines < 1 or n_jobs < 1:
            raise ValueError(
                f"n_machines and n_jobs must be >= 1, got {n_machines}, {n_jobs}"
            )
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.n_machines = n_machines
        self.n_jobs = n_jobs
        self.capacity = float(capacity)
        #: per-machine sum of hosted reservations
        self.reserved = np.zeros(n_machines)
        #: per-machine count of hosted jobs (``> 0`` means powered on)
        self.jobs_on = np.zeros(n_machines, dtype=np.int64)
        #: per-job machine index, -1 while inactive
        self.placement = np.full(n_jobs, -1, dtype=np.int64)
        #: per-job current reservation (0 while inactive)
        self.reservation = np.zeros(n_jobs)
        #: per-job liveness mask
        self.active = np.zeros(n_jobs, dtype=bool)
        #: cumulative job moves after admission (rebalance + consolidation)
        self.n_migrations = 0
        #: admissions that found no machine with room and were force-placed
        self.n_forced_placements = 0

    # -- derived views ---------------------------------------------------------

    @property
    def free(self) -> np.ndarray:
        """Per-machine unreserved capacity (negative when overcommitted)."""
        return self.capacity - self.reserved

    @property
    def n_active(self) -> int:
        return int(self.active.sum())

    @property
    def powered_on(self) -> np.ndarray:
        """Mask of machines currently hosting at least one job."""
        return self.jobs_on > 0

    def machine_demand(self, usage: np.ndarray) -> np.ndarray:
        """Sum per-job true ``usage`` onto machines (inactive jobs ignored)."""
        usage = np.asarray(usage, float)
        if usage.shape != (self.n_jobs,):
            raise ValueError(f"usage must be ({self.n_jobs},), got {usage.shape}")
        idx = np.flatnonzero(self.active)
        return np.bincount(
            self.placement[idx], weights=usage[idx], minlength=self.n_machines
        )

    def jobs_on_machine(self, machine: int) -> np.ndarray:
        """Indices of the active jobs hosted by ``machine``."""
        return np.flatnonzero(self.active & (self.placement == machine))

    # -- lifecycle -------------------------------------------------------------

    def admit(self, job: int, reservation: float) -> int:
        """Place a new job best-fit by its reservation; returns the machine.

        Best-fit (tightest machine that still fits) keeps free capacity
        concentrated, which is what lets consolidation power machines
        off. When nothing fits, the job is force-placed on the machine
        with the most free capacity — the cluster is full and the
        overcommit risk is the accounted consequence.
        """
        if self.active[job]:
            raise ValueError(f"job {job} is already active")
        if reservation <= 0:
            raise ValueError(f"reservation must be positive, got {reservation}")
        free = self.free
        fits = free >= reservation - _FIT_EPS
        if fits.any():
            candidates = np.flatnonzero(fits)
            machine = int(candidates[np.argmin(free[candidates])])
        else:
            machine = int(np.argmax(free))
            self.n_forced_placements += 1
        self.active[job] = True
        self.placement[job] = machine
        self.reservation[job] = reservation
        self.reserved[machine] += reservation
        self.jobs_on[machine] += 1
        return machine

    def depart(self, job: int) -> None:
        """Remove a finished job and release its reservation."""
        if not self.active[job]:
            raise ValueError(f"job {job} is not active")
        machine = int(self.placement[job])
        self.reserved[machine] -= self.reservation[job]
        self.jobs_on[machine] -= 1
        if self.jobs_on[machine] == 0:
            self.reserved[machine] = 0.0  # flush accumulated float dust
        self.active[job] = False
        self.placement[job] = -1
        self.reservation[job] = 0.0

    def resize(self, jobs: np.ndarray, reservations: np.ndarray) -> None:
        """Set new reservations for active jobs in one vectorized pass."""
        jobs = np.asarray(jobs, dtype=np.int64)
        reservations = np.asarray(reservations, float)
        if jobs.size == 0:
            return
        if not self.active[jobs].all():
            raise ValueError("resize targets must all be active jobs")
        if (reservations <= 0).any():
            raise ValueError("reservations must be positive")
        delta = reservations - self.reservation[jobs]
        self.reservation[jobs] = reservations
        np.add.at(self.reserved, self.placement[jobs], delta)

    # -- placement maintenance -------------------------------------------------

    def _best_fit(self, reservation: float, exclude: int) -> int | None:
        """Tightest machine (other than ``exclude``) with room, or None."""
        free = self.free
        fits = free >= reservation - _FIT_EPS
        fits[exclude] = False
        if not fits.any():
            return None
        candidates = np.flatnonzero(fits)
        return int(candidates[np.argmin(free[candidates])])

    def _move(self, job: int, target: int) -> None:
        source = int(self.placement[job])
        res = self.reservation[job]
        self.reserved[source] -= res
        self.jobs_on[source] -= 1
        if self.jobs_on[source] == 0:
            self.reserved[source] = 0.0
        self.reserved[target] += res
        self.jobs_on[target] += 1
        self.placement[job] = target
        self.n_migrations += 1

    def rebalance(self) -> int:
        """Migrate jobs off overcommitted machines; returns moves made.

        Reservation resizes can push a machine's committed total past
        its capacity. Largest-reservation-first eviction clears the
        excess in the fewest moves; a machine that cannot be cleared
        (cluster-wide shortage) stays overcommitted and the overload risk
        shows up in the report instead.
        """
        moves = 0
        for machine in np.flatnonzero(self.reserved > self.capacity + _FIT_EPS):
            machine = int(machine)
            hosted = self.jobs_on_machine(machine)
            # big movers first: each move sheds the most excess
            for job in hosted[np.argsort(-self.reservation[hosted], kind="stable")]:
                if self.reserved[machine] <= self.capacity + _FIT_EPS:
                    break
                target = self._best_fit(self.reservation[job], exclude=machine)
                if target is not None:
                    self._move(int(job), target)
                    moves += 1
        return moves

    def consolidate(self, max_drains: int = 1) -> int:
        """Try to power off the emptiest machines; returns moves made.

        A drain relocates *every* job of the least-reserved powered-on
        machine into other machines' free space (best-fit). Partial
        drains are never committed — they would cost migrations without
        saving a machine. ``max_drains`` bounds the churn per tick.
        """
        moves = 0
        for _ in range(max_drains):
            on = np.flatnonzero(self.powered_on)
            if on.size <= 1:
                break
            source = int(on[np.argmin(self.reserved[on])])
            hosted = self.jobs_on_machine(source)
            # feasibility dry-run against a copy of the free vector;
            # only powered-on targets count — draining into a cold machine
            # saves nothing and ping-pongs jobs between empty machines
            free = self.free.copy()
            free[~self.powered_on] = -np.inf
            free[source] = -np.inf  # never "relocate" onto the source
            plan: list[tuple[int, int]] = []
            feasible = True
            for job in hosted[np.argsort(-self.reservation[hosted], kind="stable")]:
                res = self.reservation[job]
                fits = free >= res - _FIT_EPS
                if not fits.any():
                    feasible = False
                    break
                candidates = np.flatnonzero(fits)
                target = int(candidates[np.argmin(free[candidates])])
                free[target] -= res
                plan.append((int(job), target))
            if not feasible:
                break  # every other powered-on machine is at least as full
            for job, target in plan:
                self._move(job, target)
            moves += len(plan)
        return moves

    # -- invariants ------------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError if the redundant state views disagree.

        Used by the conservation tests (and cheap enough to call inside
        debug runs): machine aggregates must equal what a from-scratch
        recount of the job arrays produces, and no active job may be
        unplaced or placed out of range.
        """
        idx = np.flatnonzero(self.active)
        assert (self.placement[idx] >= 0).all(), "active job without a machine"
        assert (self.placement[idx] < self.n_machines).all(), "placement out of range"
        assert (self.placement[~self.active] == -1).all(), "inactive job still placed"
        recount = np.bincount(self.placement[idx], minlength=self.n_machines)
        assert (recount == self.jobs_on).all(), "jobs_on disagrees with placements"
        resum = np.bincount(
            self.placement[idx], weights=self.reservation[idx], minlength=self.n_machines
        )
        np.testing.assert_allclose(
            resum, self.reserved, atol=1e-9, err_msg="reserved disagrees with reservations"
        )
