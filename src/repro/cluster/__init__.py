"""Closed-loop cluster autoscaling: predict → decide → act at cluster scale.

The subpackage that connects the repo's previously-isolated layers into
one feedback loop. A discrete-time simulator hosts thousands of jobs on
a machine fleet; a :class:`~repro.streaming.fleet.FleetPredictor`
forecasts every job's next-tick utilization from what the cluster
*observed* (throttled usage, not true demand); pluggable autoscaling
policies turn forecasts into per-job reservations; and the packing layer
places arrivals, migrates jobs off overcommitted machines, and
consolidates emptied ones. Decisions change observations, observations
change forecasts, forecasts change decisions.

Modules:

* :mod:`~repro.cluster.replay` — shared demand-vs-supply primitives
  (also the backend for the open-loop allocation/scheduling simulators);
* :mod:`~repro.cluster.state` — vectorized machine/job state with
  placement, migration, and consolidation;
* :mod:`~repro.cluster.forecast` — the fleet-served forecast source with
  residual-quantile headrooms;
* :mod:`~repro.cluster.autoscaler` — the policy ladder (request,
  reactive, predictive, quantile, oracle);
* :mod:`~repro.cluster.simulator` — the tick loop;
* :mod:`~repro.cluster.report` — outcome records and the comparison table.
"""

from .replay import EXCESS_EPS, ExcessStats, excess_stats
from .state import ClusterState
from .report import ClusterReport, aggregate_reports, format_policy_table
from .forecast import FleetForecastSource, ForecastSource, Forecasts
from .autoscaler import (
    POLICY_NAMES,
    AutoscalePolicy,
    OraclePolicy,
    PolicyInputs,
    PredictivePointPolicy,
    PredictiveQuantilePolicy,
    ReactivePolicy,
    RequestPolicy,
    make_policy,
)
from .simulator import ClusterConfig, ClusterSimulator, JobSchedule, make_schedule

__all__ = [
    "EXCESS_EPS",
    "ExcessStats",
    "excess_stats",
    "ClusterState",
    "ClusterReport",
    "aggregate_reports",
    "format_policy_table",
    "ForecastSource",
    "Forecasts",
    "FleetForecastSource",
    "AutoscalePolicy",
    "PolicyInputs",
    "RequestPolicy",
    "ReactivePolicy",
    "PredictivePointPolicy",
    "PredictiveQuantilePolicy",
    "OraclePolicy",
    "make_policy",
    "POLICY_NAMES",
    "ClusterConfig",
    "JobSchedule",
    "make_schedule",
    "ClusterSimulator",
]
