"""Closed-loop cluster outcomes and the policy-comparison table.

A :class:`ClusterReport` is a frozen record of one simulated run — every
field is a deterministic function of (trace, policy, seed), so two runs
with the same inputs must produce *equal* reports (asserted by the
determinism tests). Wall-clock quantities (decision latency, tick
latency) deliberately live in the obs registry's histograms, not here.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["ClusterReport", "aggregate_reports", "format_policy_table"]


@dataclass(frozen=True)
class ClusterReport:
    """Operational outcome of one autoscaling policy over one trace."""

    policy: str
    n_machines: int
    n_jobs: int
    ticks: int
    #: (job, tick) samples scored — the SLA denominator
    job_ticks: int
    #: fraction of job-ticks where true demand exceeded the reservation
    sla_violation_rate: float
    #: mean unmet demand during violating job-ticks (breach severity)
    mean_violation_depth: float
    #: fraction of powered-on machine-ticks where true demand exceeded capacity
    overload_rate: float
    #: served demand / powered-on capacity (the Fig.2/Fig.3 metric, closed-loop)
    mean_utilization: float
    #: powered-on capacity never reserved by anyone / powered-on capacity
    stranded_frac: float
    #: reserved-but-unused share of reserved job-tick capacity (allocation waste)
    waste_frac: float
    #: mean per-job reservation over all job-ticks
    mean_reservation: float
    #: powered-on machine-ticks — the bill
    machine_ticks: int
    #: job moves after admission (rebalancing + consolidation)
    migrations: int
    #: admissions that found no machine with reservable room
    forced_placements: int
    #: jobs whose full lifetime completed inside the horizon
    jobs_completed: int
    #: fraction of predictive decisions backed by a fresh forecast
    forecast_coverage: float

    def cost_per_job(self, machine_tick_cost: float = 1.0) -> float:
        """Machine-ticks paid per completed job — the headline bill."""
        return self.machine_ticks * machine_tick_cost / max(self.jobs_completed, 1)

    def cost(
        self, machine_tick_cost: float = 1.0, violation_penalty: float = 10.0
    ) -> float:
        """Scalar objective: the bill plus penalized SLA breaches.

        Same 10x industry-style weighting as
        :meth:`repro.allocation.simulator.AllocationReport.cost`.
        """
        return self.cost_per_job(machine_tick_cost) * (
            1.0
            + violation_penalty
            * self.sla_violation_rate
            * max(self.mean_violation_depth, 1e-9)
        )


def aggregate_reports(reports: list[ClusterReport]) -> ClusterReport:
    """Mean-over-runs report (e.g. across trace seeds) for one policy.

    Rates and fractions average directly; count fields average and round
    (so derived ratios like :meth:`ClusterReport.cost_per_job` become
    ratios of means, which is what a multi-seed gate should compare).
    All inputs must describe the same policy.
    """
    if not reports:
        raise ValueError("need at least one report to aggregate")
    names = {r.policy for r in reports}
    if len(names) > 1:
        raise ValueError(f"refusing to aggregate across policies: {sorted(names)}")
    if len(reports) == 1:
        return reports[0]
    values = {}
    for f in fields(ClusterReport):
        if f.name == "policy":
            values[f.name] = reports[0].policy
            continue
        mean = sum(getattr(r, f.name) for r in reports) / len(reports)
        values[f.name] = round(mean) if f.type == "int" else mean
    return ClusterReport(**values)


def format_policy_table(reports: list[ClusterReport], baseline: str = "reactive") -> str:
    """Render the policy-comparison table the autoscale experiment prints."""
    from ..analysis.reporting import format_table

    by_name = {r.policy: r for r in reports}
    base = by_name.get(baseline)
    rows = []
    for r in reports:
        cost = r.cost_per_job()
        rel = "-"
        if base is not None and base.cost_per_job() > 0:
            rel = f"{(cost / base.cost_per_job() - 1.0) * 100:+.1f}%"
        rows.append(
            [
                r.policy,
                f"{r.sla_violation_rate * 100:.3f}",
                f"{r.overload_rate * 100:.3f}",
                f"{r.mean_utilization * 100:.1f}",
                f"{r.waste_frac * 100:.1f}",
                f"{r.stranded_frac * 100:.1f}",
                f"{cost:.2f}",
                rel,
                r.migrations,
                f"{r.forecast_coverage * 100:.0f}",
            ]
        )
    return format_table(
        [
            "policy",
            "SLA viol %",
            "overload %",
            "util %",
            "waste %",
            "stranded %",
            "cost/job",
            f"vs {baseline}",
            "migrations",
            "fc cov %",
        ],
        rows,
    )
