"""Shared demand-vs-supply replay primitives.

Every replay harness in this repo ultimately scores the same two failure
modes the paper's §I names — idle capacity from over-supply and degraded
workloads from under-supply. Before the closed-loop cluster simulator
existed, :mod:`repro.allocation.simulator` and
:mod:`repro.scheduling.simulator` each hand-rolled the excess/slack
arithmetic; this module is the single home both (and the cluster loop)
now share.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ExcessStats", "excess_stats"]

#: excess below this is float noise, not a breach (matches the historical
#: thresholds of both replay simulators)
EXCESS_EPS = 1e-12


@dataclass(frozen=True)
class ExcessStats:
    """How demand compared to supply over a set of samples.

    The same statistics read as *violation/over-provision* when supply is
    a reservation (allocation replay), as *overload/stranding* when
    supply is a machine capacity (scheduling replay), and as both at
    once in the cluster loop.
    """

    #: samples scored
    n_samples: int
    #: fraction of samples where demand exceeded supply
    rate: float
    #: mean unmet demand during exceeding samples (breach severity)
    mean_depth: float
    #: mean supplied-but-unused capacity (the waste side)
    mean_slack: float
    #: mean demand actually servable, ``mean(min(demand, supply))``
    mean_served: float
    #: largest demand observed in any sample
    peak_demand: float


def excess_stats(demand: np.ndarray, supply: np.ndarray | float) -> ExcessStats:
    """Score ``demand`` against ``supply`` elementwise (broadcastable).

    ``demand`` may be any shape — per-interval reservations score a
    ``(N,)`` vector, a placement replay scores a ``(machines, steps)``
    load matrix against a scalar capacity; the statistics are taken over
    all elements either way.
    """
    demand = np.asarray(demand, float)
    supply = np.asarray(supply, float)
    if demand.size == 0:
        raise ValueError("cannot score an empty demand sample")
    excess = np.maximum(demand - supply, 0.0)
    exceeded = excess > EXCESS_EPS
    return ExcessStats(
        n_samples=int(demand.size),
        rate=float(exceeded.mean()),
        mean_depth=float(excess[exceeded].mean()) if exceeded.any() else 0.0,
        mean_slack=float(np.maximum(supply - demand, 0.0).mean()),
        mean_served=float(np.minimum(demand, supply).mean()),
        peak_demand=float(demand.max()),
    )
