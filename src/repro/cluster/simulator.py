"""The closed-loop tick: predict → decide → act, with feedback.

This is the paper's §II motivation made end-to-end: the three subsystems
that were previously evaluated in isolation — :mod:`repro.streaming`
(forecasts), :mod:`repro.allocation` (reservation sizing),
:mod:`repro.scheduling` (packing) — wired into one discrete-time cluster
simulation where decisions change what is observed next.

Each tick ``t``:

1. **lifecycle** — jobs whose lifetime ended depart (releasing their
   reservation, possibly powering a machine off); arriving jobs are
   admitted best-fit by their requested capacity (the safe cold-start
   footprint).
2. **realize + score** — every active job's true demand materializes.
   A job demanding more than its reservation is *throttled* to it: that
   job-tick is an SLA violation, and — the feedback loop — the predictor
   only ever sees the throttled value. Machine-level demand above
   capacity (possible when shortage forced overcommit) is an overload
   machine-tick.
3. **observe** — the throttled tick (NaN rows for absent jobs) feeds the
   forecast source, i.e. a full :class:`~repro.streaming.fleet.FleetPredictor`
   serving one stream per job.
4. **decide** — the policy sizes every active job's next-tick
   reservation from the freshest forecasts (stale slots fall back to
   reactive sizing); the state applies the resize, migrates jobs off
   overcommitted machines, and periodically consolidates the emptiest
   machine away.

Observability: SLA-violation/migration/admission counters, utilization
and overload-risk gauges, and decision/tick latency histograms land in
the process metric registry. Wall-clock never enters the
:class:`~repro.cluster.report.ClusterReport` — reports are bit-exact
functions of (schedule, policy, seed).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..obs.registry import MetricRegistry, get_registry, is_enabled, log_buckets
from ..obs import trace
from ..scheduling.jobs import JobGenerator
from .autoscaler import AutoscalePolicy, PolicyInputs
from .forecast import ForecastSource, Forecasts
from .report import ClusterReport
from .state import ClusterState

__all__ = ["ClusterConfig", "JobSchedule", "make_schedule", "ClusterSimulator"]


@dataclass(frozen=True)
class ClusterConfig:
    """Sizing and mechanics of one closed-loop run."""

    n_machines: int
    capacity: float = 1.0
    #: attempt a consolidation drain every this many ticks (0 disables)
    consolidate_every: int = 2
    #: machines drained per consolidation attempt
    max_drains: int = 2
    #: demand must exceed the reservation by more than this to violate
    sla_eps: float = 1e-9


@dataclass(frozen=True)
class JobSchedule:
    """The full job population and when each member runs.

    ``usage`` is dense ``(ticks, n_jobs)``: true demand while the job is
    alive, NaN outside ``[arrival, departure)``. Dense beats ragged here
    — every per-tick slice the simulator needs is one row view.
    """

    usage: np.ndarray
    request: np.ndarray
    arrival: np.ndarray
    departure: np.ndarray  #: exclusive end tick (clipped to the horizon)
    #: jobs whose full sampled lifetime fits inside the horizon
    completes: np.ndarray

    @property
    def ticks(self) -> int:
        return self.usage.shape[0]

    @property
    def n_jobs(self) -> int:
        return self.usage.shape[1]

    @property
    def job_ticks(self) -> int:
        """Total scheduled (job, tick) samples — the SLA denominator."""
        return int((self.departure - self.arrival).sum())


def make_schedule(
    n_jobs: int,
    ticks: int,
    seed: int = 0,
    generator: JobGenerator | None = None,
    min_life: int = 30,
    max_life: int | None = None,
) -> JobSchedule:
    """Sample an arrival/departure schedule over the workload archetypes.

    Jobs come from :class:`~repro.scheduling.jobs.JobGenerator` (usage
    sized for the whole horizon, then sliced to each job's sampled
    lifetime), arrivals are uniform over the horizon, and lifetimes are
    uniform in ``[min_life, max_life]`` — so the cluster sees churn the
    whole run, not one synchronized batch.
    """
    if ticks < min_life:
        raise ValueError(f"ticks ({ticks}) must be >= min_life ({min_life})")
    if generator is None:
        generator = JobGenerator(duration=ticks, seed=seed)
    jobs = generator.generate(n_jobs)
    max_life = min(max_life if max_life is not None else ticks // 2, ticks)
    if max_life < min_life:
        raise ValueError(f"max_life ({max_life}) must be >= min_life ({min_life})")
    rng = np.random.default_rng(seed + 0x5EED)
    life = rng.integers(min_life, max_life + 1, n_jobs)
    arrival = rng.integers(0, ticks - min_life + 1, n_jobs)
    departure = np.minimum(arrival + life, ticks)
    usage = np.full((ticks, n_jobs), np.nan)
    for j, job in enumerate(jobs):
        span = int(departure[j] - arrival[j])
        usage[arrival[j] : departure[j], j] = job.usage[:span]
    return JobSchedule(
        usage=usage,
        request=np.array([job.request for job in jobs]),
        arrival=arrival.astype(np.int64),
        departure=departure.astype(np.int64),
        completes=(arrival + life <= ticks),
    )


class ClusterSimulator:
    """Run one policy against one schedule and report the outcome."""

    def __init__(
        self,
        schedule: JobSchedule,
        policy: AutoscalePolicy,
        config: ClusterConfig,
        source: ForecastSource | None = None,
        registry: MetricRegistry | None = None,
    ) -> None:
        if policy.needs_forecasts and source is None:
            raise ValueError(f"policy {policy.name!r} needs a forecast source")
        self.schedule = schedule
        self.policy = policy
        self.config = config
        self.source = source
        reg = get_registry(registry)
        self._c_violations = reg.counter(
            "cluster_sla_violations_total", "job-ticks throttled below true demand"
        )
        self._c_migrations = reg.counter(
            "cluster_migrations_total", "job moves after admission"
        )
        self._c_admissions = reg.counter(
            "cluster_admissions_total", "jobs placed on the cluster"
        )
        self._c_forced = reg.counter(
            "cluster_forced_placements_total", "admissions that found no room"
        )
        self._g_util = reg.gauge(
            "cluster_utilization", "served demand / powered-on capacity, last tick"
        )
        self._g_risk = reg.gauge(
            "cluster_overload_risk", "fraction of powered-on machines overcommitted"
        )
        self._g_jobs = reg.gauge("cluster_active_jobs", "jobs running this tick")
        self._g_machines = reg.gauge("cluster_machines_on", "machines powered on")
        self._h_decision = reg.histogram(
            "cluster_decision_seconds",
            "autoscaler decide+act latency per tick",
            buckets=log_buckets(1e-6, 10.0),
        )
        self._h_tick = reg.histogram(
            "cluster_tick_seconds",
            "full closed-loop tick latency",
            buckets=log_buckets(1e-6, 10.0),
        )

    # -- one full run ----------------------------------------------------------

    def run(self) -> ClusterReport:
        sched, policy, cfg = self.schedule, self.policy, self.config
        ticks, n_jobs = sched.ticks, sched.n_jobs
        capacity = cfg.capacity
        state = ClusterState(cfg.n_machines, n_jobs, capacity)
        obs_on = is_enabled()

        # per-tick lifecycle index, precomputed once
        arrivals = [np.flatnonzero(sched.arrival == t) for t in range(ticks)]
        departures = [np.flatnonzero(sched.departure == t) for t in range(ticks + 1)]

        last_observed = np.full(n_jobs, np.nan)
        nan_row = np.full(n_jobs, np.nan)
        empty_fc = Forecasts(point=nan_row, headroom=nan_row)

        job_ticks = 0
        violations = 0
        violation_depth = 0.0
        machine_ticks = 0
        overloaded_ticks = 0
        served_sum = 0.0
        stranded_sum = 0.0
        waste_sum = 0.0
        reservation_sum = 0.0
        stale_decisions = 0
        predictive_decisions = 0

        with trace.span("cluster.run") as sp:
            for t in range(ticks):
                t0 = time.perf_counter() if obs_on else 0.0
                # -- lifecycle
                for j in departures[t]:
                    state.depart(int(j))
                for j in arrivals[t]:
                    state.admit(int(j), float(sched.request[j]))
                act = state.active
                idx = np.flatnonzero(act)
                if obs_on and len(arrivals[t]):
                    self._c_admissions.inc(len(arrivals[t]))

                # -- realize demand, throttle, score
                u = sched.usage[t]
                r = state.reservation
                viol = act & (u > r + cfg.sla_eps)
                n_viol = int(np.count_nonzero(viol))
                violations += n_viol
                if n_viol:
                    violation_depth += float((u - r)[viol].sum())
                observed = np.where(viol, r, u)
                job_ticks += int(idx.size)

                load = state.machine_demand(np.where(act, observed, 0.0))
                on = state.powered_on
                n_on = int(np.count_nonzero(on))
                machine_ticks += n_on
                overloaded_ticks += int(
                    np.count_nonzero(load[on] > capacity + cfg.sla_eps)
                )
                tick_served = float(observed[idx].sum())
                served_sum += tick_served
                stranded_sum += float(np.maximum(capacity - state.reserved[on], 0.0).sum())
                waste_sum += float(np.maximum(r[idx] - u[idx], 0.0).sum())
                reservation_sum += float(r[idx].sum())

                # -- observe (the feedback: the predictor sees throttled usage)
                obs_row = np.where(act, observed, np.nan)
                if self.source is not None:
                    self.source.observe(obs_row, censored=viol)
                last_observed = np.where(act, observed, last_observed)

                # -- decide next tick's reservations
                d0 = time.perf_counter() if obs_on else 0.0
                if t < ticks - 1 and idx.size:
                    if policy.needs_forecasts:
                        fc = self.source.forecast(need_headroom=policy.needs_headroom)
                        predictive_decisions += int(idx.size)
                        stale_decisions += int(
                            np.count_nonzero(~np.isfinite(fc.point[idx]))
                        )
                    else:
                        fc = empty_fc
                    inputs = PolicyInputs(
                        last_observed=last_observed,
                        point=fc.point,
                        headroom_q=fc.headroom,
                        truth_next=sched.usage[t + 1],
                        request=sched.request,
                        active=act,
                        throttled=viol,
                    )
                    new_res = policy.reservations(inputs)
                    state.resize(idx, new_res[idx])
                    moved = state.rebalance()
                    if cfg.consolidate_every and (t + 1) % cfg.consolidate_every == 0:
                        moved += state.consolidate(cfg.max_drains)
                    if obs_on and moved:
                        self._c_migrations.inc(moved)

                if obs_on:
                    now = time.perf_counter()
                    self._h_decision.observe(now - d0)
                    self._h_tick.observe(now - t0)
                    if n_viol:
                        self._c_violations.inc(n_viol)
                    if n_on:
                        self._g_util.set(tick_served / (n_on * capacity))
                        self._g_risk.set(
                            float(
                                np.count_nonzero(
                                    state.reserved[on] > capacity + cfg.sla_eps
                                )
                            )
                            / n_on
                        )
                    self._g_jobs.set(int(idx.size))
                    self._g_machines.set(n_on)
            sp.add("ticks", ticks)
            sp.add("job_ticks", job_ticks)
        if obs_on and state.n_forced_placements:
            self._c_forced.inc(state.n_forced_placements)

        on_capacity = machine_ticks * capacity
        return ClusterReport(
            policy=policy.name,
            n_machines=cfg.n_machines,
            n_jobs=n_jobs,
            ticks=ticks,
            job_ticks=job_ticks,
            sla_violation_rate=violations / max(job_ticks, 1),
            mean_violation_depth=violation_depth / max(violations, 1),
            overload_rate=overloaded_ticks / max(machine_ticks, 1),
            mean_utilization=served_sum / max(on_capacity, 1e-12),
            stranded_frac=stranded_sum / max(on_capacity, 1e-12),
            waste_frac=waste_sum / max(reservation_sum, 1e-12),
            mean_reservation=reservation_sum / max(job_ticks, 1),
            machine_ticks=machine_ticks,
            migrations=state.n_migrations,
            forced_placements=state.n_forced_placements,
            jobs_completed=int(sched.completes.sum()),
            forecast_coverage=(
                1.0 - stale_decisions / predictive_decisions
                if predictive_decisions
                else 1.0
            ),
        )
