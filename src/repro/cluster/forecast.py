"""Forecast sources feeding the cluster autoscaler.

The loop's contract with a source is deliberately narrow: each tick the
simulator *observes* one record per job slot (the throttled utilization
the cluster actually measured — decisions feed back into the data), then
asks for a *forecast* of the next tick. A forecast may be missing
(``NaN``) for any job: the model is not fitted yet, the job's history is
shorter than a window, or the serving path failed this tick. Staleness
is therefore a first-class outcome that the autoscaler policies handle
(they fall back to reactive sizing), never an exception.

:class:`FleetForecastSource` is the production path: a full
:class:`~repro.streaming.fleet.FleetPredictor` — vectorized gate, matrix
ring buffers, micro-batched forward, supervised staggered refits — with
one stream slot per job. Jobs not currently running send all-NaN rows,
which the fleet gate quarantines as ``"empty"`` exactly like absent
streams in the serving product. On top of the point forecast it exposes
a per-job *residual quantile* (the ``tau``-quantile of each stream's
retained |error| history) — the calibrated headroom vector the
quantile policy feeds into
:class:`~repro.allocation.allocator.QuantileAllocator`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..streaming.buffer import MatrixRingBuffer
from ..streaming.fleet import FleetPredictor

__all__ = ["Forecasts", "ForecastSource", "FleetForecastSource"]


@dataclass(frozen=True)
class Forecasts:
    """Per-job next-tick forecasts; ``NaN`` marks a stale/missing entry."""

    #: (n_jobs,) point forecast of next-tick utilization
    point: np.ndarray
    #: (n_jobs,) residual-quantile headroom, NaN where uncalibrated
    headroom: np.ndarray

    @property
    def coverage(self) -> float:
        """Fraction of slots holding a fresh point forecast."""
        return float(np.isfinite(self.point).mean())


class ForecastSource(abc.ABC):
    """Observe one tick per call, then forecast the next one."""

    name: str = ""

    @abc.abstractmethod
    def observe(
        self, observed: np.ndarray, censored: np.ndarray | None = None
    ) -> None:
        """Absorb this tick's ``(n_jobs,)`` observed utilization (NaN = absent).

        ``censored`` flags slots whose observation was *throttled* — true
        demand exceeded the reservation, so the recorded value (and any
        error scored from it) is a lower bound, not a measurement. Real
        clusters expose this signal (CPU throttle counters) even though
        the uncensored demand is unobservable.
        """

    @abc.abstractmethod
    def forecast(self, need_headroom: bool = False) -> Forecasts:
        """Next-tick forecasts given everything observed so far."""


class FleetForecastSource(ForecastSource):
    """One :class:`FleetPredictor` stream slot per job.

    ``observe`` runs a full fleet tick (gate -> micro-batched prequential
    predict -> absorb -> drift/refit bookkeeping), which keeps the
    fleet's per-stream error statistics honest; ``forecast`` then gathers
    the freshest window of every eligible stream and runs one extra
    micro-batched forward to produce a *next*-tick forecast — the tick
    the autoscaler is about to size reservations for. Without that extra
    forward the newest prediction available would target the tick that
    just happened: one decision interval stale, which is exactly the
    reactive baseline's information set.
    """

    name = "fleet"

    def __init__(
        self,
        n_jobs: int,
        tau: float = 0.99,
        headroom_every: int = 4,
        min_errors: int = 16,
        censor_growth: float = 1.3,
        censor_decay: float = 0.95,
        censor_cap: float = 3.0,
        residual_history: int = 256,
        **fleet_kwargs: Any,
    ) -> None:
        if not 0.0 < tau < 1.0:
            raise ValueError(f"tau must be in (0, 1), got {tau}")
        if headroom_every < 1:
            raise ValueError(f"headroom_every must be >= 1, got {headroom_every}")
        if censor_growth < 1.0 or censor_decay > 1.0 or censor_cap < 1.0:
            raise ValueError(
                "censor_growth/cap must be >= 1 and censor_decay <= 1, got "
                f"{censor_growth}/{censor_cap}/{censor_decay}"
            )
        self.n_jobs = n_jobs
        self.tau = tau
        #: streams with fewer scored predictions than this report NaN
        #: headroom (tail quantiles of tiny samples are not calibration)
        self.min_errors = min_errors
        #: AIMD-style multiplicative correction for censored residuals: a
        #: throttled tick clips the recorded error at exactly the moments
        #: the tail quantile exists to cover, so the empirical band is
        #: biased low precisely when it is too small. Each censored tick
        #: multiplies that job's band by ``censor_growth``; uncensored
        #: ticks decay the multiplier back toward 1.
        self.censor_growth = censor_growth
        self.censor_decay = censor_decay
        self.censor_cap = censor_cap
        self._censor_mult = np.ones(n_jobs)
        #: signed residuals of the forecasts *used for sizing* (the extra
        #: next-tick forward), scored against the following observation.
        #: The band must calibrate the decision path, not the fleet's
        #: internal prequential predictions — and it must be one-sided:
        #: reserving above demand costs money but never violates, so only
        #: the upper tail of (actual - forecast) needs covering.
        self.residuals = MatrixRingBuffer(n_jobs, residual_history, 1)
        self._pending_point: np.ndarray | None = None
        #: residual quantiles are recomputed every this many forecasts —
        #: they drift slowly, and the nanquantile over the whole error
        #: ring is the one O(n_jobs * history) step in the loop
        self.headroom_every = headroom_every
        self.fleet = FleetPredictor(n_streams=n_jobs, **fleet_kwargs)
        self._ticks_seen = 0
        self._headroom_cache = np.full(n_jobs, np.nan)
        self._headroom_age = headroom_every  # force compute on first ask

    def observe(
        self, observed: np.ndarray, censored: np.ndarray | None = None
    ) -> None:
        observed = np.asarray(observed, float)
        if observed.shape != (self.n_jobs,):
            raise ValueError(f"observed must be ({self.n_jobs},), got {observed.shape}")
        if self._pending_point is not None:
            err = observed - self._pending_point
            have = np.isfinite(err)
            if have.any():
                self.residuals.append_tick(err[:, None], mask=have)
            self._pending_point = None
        self.fleet.process_tick(observed)
        self._ticks_seen += 1
        if censored is not None:
            censored = np.asarray(censored, bool)
            mult = self._censor_mult
            mult[censored] = np.minimum(
                mult[censored] * self.censor_growth, self.censor_cap
            )
            seen = np.isfinite(observed) & ~censored
            mult[seen] = np.maximum(mult[seen] * self.censor_decay, 1.0)

    def forecast(self, need_headroom: bool = False) -> Forecasts:
        fleet = self.fleet
        point = np.full(self.n_jobs, np.nan)
        serving = fleet.fallback_model if fleet.on_fallback else fleet.model
        if serving is not None:
            idx = np.flatnonzero(fleet.buffer.sizes >= fleet.window)
            if idx.size:
                batch = fleet.buffer.last_windows(idx, fleet.window)
                try:
                    point[idx] = np.asarray(serving.predict(batch), float)[:, 0]
                except Exception:  # noqa: BLE001 — a failed forward is a stale tick
                    pass
                bad = ~np.isfinite(point[idx]) | (np.abs(point[idx]) > 1e6)
                if bad.any():
                    point[idx[bad]] = np.nan
        self._pending_point = point.copy()
        headroom = self._headroom_cache
        if need_headroom:
            self._headroom_age += 1
            if self._headroom_age >= self.headroom_every:
                self._headroom_age = 0
                headroom = self._residual_quantiles()
                self._headroom_cache = headroom
            headroom = headroom * self._censor_mult
        return Forecasts(point=point, headroom=headroom)

    def _residual_quantiles(self) -> np.ndarray:
        """Upper ``tau``-quantile of each job's signed sizing residuals.

        NaN below ``min_errors`` scored forecasts (tail quantiles of tiny
        samples are not calibration); floored at zero — a negative band
        would spend forecast skill on shaving below the point estimate,
        which risks violations to save capacity the floor/cap already
        bound.
        """
        out = np.full(self.n_jobs, np.nan)
        idx = np.flatnonzero(self.residuals.sizes >= self.min_errors)
        if idx.size:
            retained = self.residuals.filled_matrix()[idx, :, 0]
            out[idx] = np.nanquantile(retained, self.tau, axis=1)
        return np.maximum(out, 0.0)
