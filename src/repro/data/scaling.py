"""Feature scaling — step 2 of Algorithm 1.

The paper normalizes with the max-min method (eq. 1):
``x_norm = (x - X_min) / (X_max - X_min)``. :class:`MinMaxScaler`
implements exactly that with a fitted inverse for de-normalizing
predictions back to utilization percent; :class:`StandardScaler` is
provided for ablations.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MinMaxScaler", "StandardScaler"]


class _FittedScaler:
    _fitted: bool = False

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError(f"{type(self).__name__} must be fitted before use")

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        return self.fit(x).transform(x)


class MinMaxScaler(_FittedScaler):
    """Per-column min-max normalization to ``[0, 1]`` (paper eq. 1).

    Constant columns map to 0 (the paper's formula would divide by zero;
    zero is the conventional choice and keeps the inverse exact).
    """

    def __init__(self) -> None:
        self.min_: np.ndarray | None = None
        self.max_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "MinMaxScaler":
        x = np.asarray(x, float)
        if x.ndim == 1:
            x = x[:, None]
        if np.isnan(x).any():
            raise ValueError("MinMaxScaler.fit received NaNs; clean the data first")
        self.min_ = x.min(axis=0)
        self.max_ = x.max(axis=0)
        self._fitted = True
        return self

    def _span(self) -> np.ndarray:
        span = self.max_ - self.min_
        span = np.where(span == 0.0, 1.0, span)
        return span

    def transform(self, x: np.ndarray) -> np.ndarray:
        self._check_fitted()
        x = np.asarray(x, float)
        squeeze = x.ndim == 1
        if squeeze:
            x = x[:, None]
        out = (x - self.min_) / self._span()
        return out[:, 0] if squeeze else out

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        self._check_fitted()
        x = np.asarray(x, float)
        squeeze = x.ndim == 1
        if squeeze:
            x = x[:, None]
        out = x * self._span() + self.min_
        return out[:, 0] if squeeze else out

    def inverse_transform_column(self, x: np.ndarray, column: int) -> np.ndarray:
        """Invert a single column's scaling (for de-normalizing CPU predictions)."""
        self._check_fitted()
        span = self._span()
        return np.asarray(x, float) * span[column] + self.min_[column]


class StandardScaler(_FittedScaler):
    """Per-column z-score scaling; constant columns get unit sigma."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.std_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        x = np.asarray(x, float)
        if x.ndim == 1:
            x = x[:, None]
        if np.isnan(x).any():
            raise ValueError("StandardScaler.fit received NaNs; clean the data first")
        self.mean_ = x.mean(axis=0)
        std = x.std(axis=0)
        self.std_ = np.where(std == 0.0, 1.0, std)
        self._fitted = True
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        self._check_fitted()
        x = np.asarray(x, float)
        squeeze = x.ndim == 1
        if squeeze:
            x = x[:, None]
        out = (x - self.mean_) / self.std_
        return out[:, 0] if squeeze else out

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        self._check_fitted()
        x = np.asarray(x, float)
        squeeze = x.ndim == 1
        if squeeze:
            x = x[:, None]
        out = x * self.std_ + self.mean_
        return out[:, 0] if squeeze else out
