"""Algorithm-1 data pipeline: clean → normalize → screen → expand → window.

Each stage of the paper's Algorithm 1 is a standalone, testable module;
:mod:`repro.data.pipeline` composes them into the end-to-end
``PredictionPipeline`` that feeds any :mod:`repro.models` forecaster.
"""

from .cleaning import CleaningReport, clean_entity, clean_matrix
from .correlation import (
    correlation_matrix,
    pearson,
    rank_by_correlation,
    select_top_half,
)
from .expansion import (
    difference_expand,
    horizontal_expand,
    vertical_expand,
    weighted_horizontal_expand,
)
from .pipeline import PipelineConfig, PredictionPipeline, PipelineResult
from .scaling import MinMaxScaler, StandardScaler
from .windowing import (
    SplitIndices,
    WindowDataset,
    chronological_split,
    make_windows,
)

__all__ = [
    "CleaningReport",
    "clean_entity",
    "clean_matrix",
    "pearson",
    "correlation_matrix",
    "rank_by_correlation",
    "select_top_half",
    "horizontal_expand",
    "vertical_expand",
    "difference_expand",
    "weighted_horizontal_expand",
    "MinMaxScaler",
    "StandardScaler",
    "make_windows",
    "chronological_split",
    "SplitIndices",
    "WindowDataset",
    "PipelineConfig",
    "PredictionPipeline",
    "PipelineResult",
]
