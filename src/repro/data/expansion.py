"""Feature expansion — step 5 of Algorithm 1 (the paper's Fig. 4).

*Horizontal* expansion (Fig. 4b, the paper's choice) widens the feature
axis with lagged copies of each indicator: ``r`` becomes
``r_{t-2}, r_{t-1}, r_t`` (eq. 11). This increases the weight of
short-term-neighbouring moments and extends the effective time span seen
by a fixed-length window without lengthening it.

*Vertical* expansion (Fig. 4a) lengthens the per-indicator history — i.e.
it is a window-length multiplier applied at windowing time.

The §V-C "future work" variants are implemented too: first-order
difference features and correlation-weighted lag counts.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "horizontal_expand",
    "vertical_expand",
    "difference_expand",
    "weighted_horizontal_expand",
]


def horizontal_expand(
    values: np.ndarray,
    names: list[str] | None = None,
    lags: tuple[int, ...] = (2, 1, 0),
) -> tuple[np.ndarray, list[str]]:
    """Widen ``(T, k)`` into ``(T - max_lag, k * len(lags))`` lag columns.

    Column order groups lags per indicator: for the paper's default
    ``lags=(2, 1, 0)`` the expansion of indicator ``cpu`` contributes
    ``cpu_lag2, cpu_lag1, cpu_lag0`` (``lag0`` is the current value).
    Rows before ``max(lags)`` are dropped because their lags don't exist.
    """
    values = np.asarray(values, float)
    if values.ndim != 2:
        raise ValueError(f"expected (T, k) matrix, got shape {values.shape}")
    if not lags:
        raise ValueError("lags may not be empty")
    if any(l < 0 for l in lags):
        raise ValueError(f"lags must be non-negative, got {lags}")
    t, k = values.shape
    max_lag = max(lags)
    if t <= max_lag:
        raise ValueError(f"series of length {t} too short for max lag {max_lag}")
    names = names if names is not None else [f"f{i}" for i in range(k)]
    if len(names) != k:
        raise ValueError(f"{k} columns but {len(names)} names")

    out_rows = t - max_lag
    blocks = []
    out_names: list[str] = []
    for j in range(k):
        for lag in lags:
            blocks.append(values[max_lag - lag : max_lag - lag + out_rows, j])
            out_names.append(f"{names[j]}_lag{lag}")
    return np.column_stack(blocks), out_names


def vertical_expand(window_size: int, factor: int = 2) -> int:
    """Paper Fig. 4(a): lengthen each indicator's history.

    Vertical expansion does not change the feature matrix — it feeds a
    longer slice of every column into the model, i.e. it multiplies the
    sliding-window length used by :func:`repro.data.windowing.make_windows`.
    The paper notes it "will cost more time on training the model";
    the ablation benchmark quantifies that trade-off.
    """
    if window_size < 1 or factor < 1:
        raise ValueError(f"window_size and factor must be >= 1, got {window_size}, {factor}")
    return window_size * factor


def difference_expand(
    values: np.ndarray, names: list[str] | None = None
) -> tuple[np.ndarray, list[str]]:
    """Append first-order differences as extra feature columns (§V-C).

    The differenced column at row ``t`` is ``x_t - x_{t-1}``; the first
    row is dropped so every feature is defined.
    """
    values = np.asarray(values, float)
    if values.ndim != 2:
        raise ValueError(f"expected (T, k) matrix, got shape {values.shape}")
    if len(values) < 2:
        raise ValueError("need at least two rows to difference")
    k = values.shape[1]
    names = names if names is not None else [f"f{i}" for i in range(k)]
    diffs = np.diff(values, axis=0)
    out = np.concatenate([values[1:], diffs], axis=1)
    out_names = list(names) + [f"{n}_diff1" for n in names]
    return out, out_names


def weighted_horizontal_expand(
    values: np.ndarray,
    correlations: np.ndarray,
    names: list[str] | None = None,
    max_lags: int = 4,
) -> tuple[np.ndarray, list[str]]:
    """Correlation-weighted horizontal expansion (§V-C future work).

    Each indicator gets a lag count proportional to its |ρ| with the
    target: the most-correlated indicator receives ``max_lags`` lagged
    copies, the least-correlated exactly one (its current value).
    """
    values = np.asarray(values, float)
    correlations = np.asarray(correlations, float)
    if values.ndim != 2:
        raise ValueError(f"expected (T, k) matrix, got shape {values.shape}")
    k = values.shape[1]
    if correlations.shape != (k,):
        raise ValueError(f"need one correlation per column, got {correlations.shape}")
    if max_lags < 1:
        raise ValueError(f"max_lags must be >= 1, got {max_lags}")
    names = names if names is not None else [f"f{i}" for i in range(k)]

    weights = np.abs(correlations)
    top = weights.max()
    scale = weights / top if top > 0 else np.ones(k)
    n_copies = np.maximum(1, np.ceil(scale * max_lags).astype(int))

    max_lag = int(n_copies.max()) - 1
    t = values.shape[0]
    if t <= max_lag:
        raise ValueError(f"series of length {t} too short for max lag {max_lag}")
    out_rows = t - max_lag

    blocks = []
    out_names: list[str] = []
    for j in range(k):
        for lag in range(n_copies[j] - 1, -1, -1):
            blocks.append(values[max_lag - lag : max_lag - lag + out_rows, j])
            out_names.append(f"{names[j]}_lag{lag}")
    return np.column_stack(blocks), out_names
