"""Pearson correlation screening — step 3/4 of Algorithm 1.

The paper (eq. 2) ranks every monitored indicator by its Pearson
correlation with the prediction target and keeps **the top half** of the
ranked list as model input. :func:`correlation_matrix` also regenerates
the Fig. 7 heatmap data.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pearson",
    "correlation_matrix",
    "rank_by_correlation",
    "select_top_half",
]


def pearson(x: np.ndarray, y: np.ndarray) -> float:
    """Pearson correlation coefficient ρ(X, Y) — paper eq. (2).

    Returns 0 for a constant series (the limit convention; a constant
    indicator carries no linear information about the target).
    """
    x = np.asarray(x, float)
    y = np.asarray(y, float)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError(f"pearson expects equal-length 1-D arrays, got {x.shape} vs {y.shape}")
    if len(x) < 2:
        raise ValueError("need at least two samples")
    xc = x - x.mean()
    yc = y - y.mean()
    denom = np.sqrt((xc**2).sum() * (yc**2).sum())
    if denom == 0.0:
        return 0.0
    return float(np.clip((xc * yc).sum() / denom, -1.0, 1.0))


def correlation_matrix(values: np.ndarray) -> np.ndarray:
    """All-pairs Pearson matrix of a ``(T, k)`` indicator log (Fig. 7 data)."""
    values = np.asarray(values, float)
    if values.ndim != 2:
        raise ValueError(f"expected (T, k) matrix, got shape {values.shape}")
    k = values.shape[1]
    centered = values - values.mean(axis=0)
    norms = np.sqrt((centered**2).sum(axis=0))
    safe = np.where(norms == 0.0, 1.0, norms)
    normalized = centered / safe
    corr = normalized.T @ normalized
    corr[norms == 0.0, :] = 0.0
    corr[:, norms == 0.0] = 0.0
    np.fill_diagonal(corr, 1.0)
    return np.clip(corr, -1.0, 1.0)


def rank_by_correlation(
    values: np.ndarray, names: list[str], target: str
) -> list[tuple[str, float]]:
    """Indicators sorted by |ρ| with the target, target first.

    The target itself always ranks first (ρ = 1), matching the paper's
    screened set which retains the predicted resource's own history.
    """
    if target not in names:
        raise KeyError(f"target {target!r} not among indicators {names}")
    ti = names.index(target)
    corr = correlation_matrix(values)[ti]
    order = np.argsort(-np.abs(corr), kind="stable")
    return [(names[i], float(corr[i])) for i in order]


def select_top_half(
    values: np.ndarray, names: list[str], target: str
) -> tuple[list[str], list[tuple[str, float]]]:
    """Keep the top half of the correlation ranking (Algorithm 1, line 3-4).

    ``p = len(indicators) / 2`` rounded up so the screened set always
    includes the target plus at least one auxiliary indicator.
    """
    ranking = rank_by_correlation(values, names, target)
    p = max(2, (len(names) + 1) // 2)
    selected = [name for name, _ in ranking[:p]]
    return selected, ranking
