"""DataClean — step 1 of the paper's Algorithm 1.

"We first screen the records with complete information from the trace"
(§III-A). Besides the paper's drop-incomplete policy this module offers
linear interpolation (useful when a model needs a gap-free regular grid),
duplicate-timestamp removal, and outlier winsorization; each action is
recorded in a :class:`CleaningReport` for auditability.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..traces.schema import EntityTrace

__all__ = ["CleaningReport", "clean_matrix", "clean_entity"]


@dataclass(frozen=True)
class CleaningReport:
    """What the cleaning pass did."""

    n_input: int
    n_output: int
    n_dropped_incomplete: int
    n_deduplicated: int
    n_interpolated_cells: int
    n_winsorized_cells: int

    @property
    def drop_fraction(self) -> float:
        return 0.0 if self.n_input == 0 else 1.0 - self.n_output / self.n_input


def _dedupe(timestamps: np.ndarray, values: np.ndarray) -> tuple[np.ndarray, np.ndarray, int]:
    """Keep the first record of each timestamp (at-least-once delivery)."""
    _, first_idx = np.unique(timestamps, return_index=True)
    first_idx.sort()
    removed = len(timestamps) - len(first_idx)
    return timestamps[first_idx], values[first_idx], removed


def _interpolate_nan(values: np.ndarray) -> tuple[np.ndarray, int]:
    """Linearly interpolate NaN cells column-by-column, edge-filling ends."""
    out = values.copy()
    filled = 0
    x = np.arange(len(values))
    for j in range(values.shape[1]):
        col = out[:, j]
        bad = np.isnan(col)
        if not bad.any():
            continue
        if bad.all():
            raise ValueError(f"column {j} is entirely missing; cannot interpolate")
        col[bad] = np.interp(x[bad], x[~bad], col[~bad])
        filled += int(bad.sum())
    return out, filled


def _winsorize(values: np.ndarray, z: float) -> tuple[np.ndarray, int]:
    """Clamp cells beyond ``z`` robust standard deviations (MAD-based)."""
    out = values.copy()
    med = np.nanmedian(out, axis=0)
    mad = np.nanmedian(np.abs(out - med), axis=0)
    sigma = 1.4826 * mad  # consistent with Gaussian std
    sigma[sigma == 0] = np.nanstd(out, axis=0)[sigma == 0] + 1e-12
    hi = med + z * sigma
    lo = med - z * sigma
    mask = (out > hi) | (out < lo)
    out = np.clip(out, lo, hi)
    return out, int(np.nansum(mask))


def clean_matrix(
    timestamps: np.ndarray,
    values: np.ndarray,
    *,
    policy: str = "drop",
    winsorize_z: float | None = None,
) -> tuple[np.ndarray, np.ndarray, CleaningReport]:
    """Clean a raw ``(T, k)`` log.

    policy:
        ``"drop"`` — the paper's rule: keep only complete records.
        ``"interpolate"`` — fill NaN cells by per-column linear interpolation
        (keeps the time axis regular for window construction).
    winsorize_z:
        If set, clamp cells further than ``z`` robust sigmas from the
        column median after missing-data handling.
    """
    if policy not in ("drop", "interpolate"):
        raise ValueError(f"policy must be 'drop' or 'interpolate', got {policy!r}")
    n_input = len(values)
    timestamps, values, n_dedup = _dedupe(np.asarray(timestamps), np.asarray(values, float))

    n_interp = 0
    if policy == "drop":
        keep = ~np.isnan(values).any(axis=1)
        dropped = int((~keep).sum())
        timestamps, values = timestamps[keep], values[keep]
    else:
        dropped = 0
        values, n_interp = _interpolate_nan(values)

    n_wins = 0
    if winsorize_z is not None:
        values, n_wins = _winsorize(values, winsorize_z)

    report = CleaningReport(
        n_input=n_input,
        n_output=len(values),
        n_dropped_incomplete=dropped,
        n_deduplicated=n_dedup,
        n_interpolated_cells=n_interp,
        n_winsorized_cells=n_wins,
    )
    return timestamps, values, report


def clean_entity(
    entity: EntityTrace, *, policy: str = "drop", winsorize_z: float | None = None
) -> tuple[EntityTrace, CleaningReport]:
    """Clean one entity's log, returning a new :class:`EntityTrace`."""
    ts, vals, report = clean_matrix(
        entity.timestamps, entity.values, policy=policy, winsorize_z=winsorize_z
    )
    return replace(entity, timestamps=ts, values=vals), report
