"""Rolling-origin cross-validation for time series.

Algorithm 1's final step feeds the data "into RPTCN model for training and
cross-validation". For time series the valid form is rolling-origin
(forward-chaining) evaluation: each fold trains on a prefix of the windows
and validates on the block immediately after it, so no fold ever trains on
the future.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from ..models.base import Forecaster, create_forecaster
from ..training.metrics import mae, mse

__all__ = ["Fold", "rolling_origin_folds", "cross_validate"]


@dataclass(frozen=True)
class Fold:
    """One forward-chaining fold (index ranges into the window arrays)."""

    train: slice
    test: slice

    def sizes(self) -> tuple[int, int]:
        return (self.train.stop - self.train.start, self.test.stop - self.test.start)


def rolling_origin_folds(
    n: int,
    n_folds: int = 5,
    min_train_fraction: float = 0.4,
    expanding: bool = True,
) -> list[Fold]:
    """Build forward-chaining folds over ``n`` chronologically ordered samples.

    The first ``min_train_fraction`` of the data is always training; the
    remainder is cut into ``n_folds`` equal test blocks. ``expanding``
    grows the training prefix fold by fold (the standard scheme);
    ``expanding=False`` slides a fixed-length training window instead.
    """
    if n < 10:
        raise ValueError(f"too few samples ({n}) for rolling-origin CV")
    if n_folds < 1:
        raise ValueError(f"n_folds must be >= 1, got {n_folds}")
    if not 0.0 < min_train_fraction < 1.0:
        raise ValueError(f"min_train_fraction must be in (0, 1), got {min_train_fraction}")

    first_test = int(n * min_train_fraction)
    block = (n - first_test) // n_folds
    if block < 1:
        raise ValueError(
            f"n={n} with min_train_fraction={min_train_fraction} leaves no room "
            f"for {n_folds} test blocks"
        )

    folds = []
    train_len = first_test
    for k in range(n_folds):
        test_start = first_test + k * block
        test_stop = n if k == n_folds - 1 else test_start + block
        train_start = 0 if expanding else test_start - train_len
        folds.append(Fold(train=slice(train_start, test_start), test=slice(test_start, test_stop)))
    return folds


def cross_validate(
    forecaster_factory: str | Callable[[], Forecaster],
    x: np.ndarray,
    y: np.ndarray,
    n_folds: int = 5,
    forecaster_kwargs: dict[str, Any] | None = None,
    min_train_fraction: float = 0.4,
) -> dict[str, Any]:
    """Rolling-origin evaluation of a forecaster.

    ``forecaster_factory`` is a registry name (instantiated fresh per fold
    with ``forecaster_kwargs``) or a zero-arg callable returning a new
    forecaster. Returns per-fold and aggregate MSE/MAE.
    """
    x = np.asarray(x, float)
    y = np.asarray(y, float)
    folds = rolling_origin_folds(len(x), n_folds, min_train_fraction)

    fold_mse, fold_mae = [], []
    for fold in folds:
        if isinstance(forecaster_factory, str):
            model = create_forecaster(forecaster_factory, **(forecaster_kwargs or {}))
        else:
            model = forecaster_factory()
        model.fit(x[fold.train], y[fold.train])
        pred = model.predict(x[fold.test])
        fold_mse.append(mse(y[fold.test], pred))
        fold_mae.append(mae(y[fold.test], pred))

    return {
        "folds": folds,
        "mse": fold_mse,
        "mae": fold_mae,
        "mean_mse": float(np.mean(fold_mse)),
        "mean_mae": float(np.mean(fold_mae)),
        "std_mse": float(np.std(fold_mse)),
        "std_mae": float(np.std(fold_mae)),
    }
