"""Sliding windows and the paper's chronological 6:2:2 split.

Windows are produced with ``np.lib.stride_tricks.sliding_window_view``
(views, no copies — per the HPC guide) and only materialized at batch
time. The split is strictly chronological: training data precedes
validation precedes test, so no future information leaks backwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..obs.profile import profiled

__all__ = ["make_windows", "chronological_split", "SplitIndices", "WindowDataset"]


@profiled(name="data.make_windows")
def make_windows(
    features: np.ndarray,
    target: np.ndarray,
    window: int,
    horizon: int = 1,
    stride: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """Build supervised pairs from aligned series.

    Returns ``X`` of shape ``(N, window, F)`` and ``y`` of shape
    ``(N, horizon)`` where ``y[i]`` holds the target at the ``horizon``
    steps immediately after window ``i``.
    """
    features = np.asarray(features, float)
    target = np.asarray(target, float)
    if features.ndim == 1:
        features = features[:, None]
    if features.ndim != 2 or target.ndim != 1:
        raise ValueError(
            f"features must be (T, F) and target (T,), got {features.shape}, {target.shape}"
        )
    if len(features) != len(target):
        raise ValueError(f"length mismatch: {len(features)} features vs {len(target)} target")
    if window < 1 or horizon < 1 or stride < 1:
        raise ValueError("window, horizon and stride must all be >= 1")
    t = len(features)
    n = (t - window - horizon) // stride + 1
    if n < 1:
        raise ValueError(
            f"series of length {t} too short for window={window}, horizon={horizon}"
        )

    x_view = np.lib.stride_tricks.sliding_window_view(features, window, axis=0)
    # sliding_window_view puts the window axis last: (T-w+1, F, w) -> (N, w, F)
    starts = np.arange(n) * stride
    x = x_view[starts].transpose(0, 2, 1)

    y_view = np.lib.stride_tricks.sliding_window_view(target, horizon)
    y = y_view[starts + window]
    return np.ascontiguousarray(x), np.ascontiguousarray(y)


@dataclass(frozen=True)
class SplitIndices:
    """Chronological index ranges for train / validation / test."""

    train: slice
    val: slice
    test: slice

    def sizes(self) -> tuple[int, int, int]:
        return (
            self.train.stop - self.train.start,
            self.val.stop - self.val.start,
            self.test.stop - self.test.start,
        )


def chronological_split(
    n: int, ratios: tuple[float, float, float] = (0.6, 0.2, 0.2)
) -> SplitIndices:
    """The paper's 6:2:2 split ("a common ratio in time-series data")."""
    if n < 3:
        raise ValueError(f"cannot split {n} samples three ways")
    if len(ratios) != 3 or any(r <= 0 for r in ratios) or abs(sum(ratios) - 1.0) > 1e-9:
        raise ValueError(f"ratios must be three positive numbers summing to 1, got {ratios}")
    n_train = int(n * ratios[0])
    n_val = int(n * ratios[1])
    n_train = max(1, n_train)
    n_val = max(1, n_val)
    if n_train + n_val >= n:
        raise ValueError(f"split leaves no test data for n={n}, ratios={ratios}")
    return SplitIndices(
        train=slice(0, n_train),
        val=slice(n_train, n_train + n_val),
        test=slice(n_train + n_val, n),
    )


class WindowDataset:
    """Windowed supervised dataset with chronological splits and batching."""

    def __init__(
        self,
        features: np.ndarray,
        target: np.ndarray,
        window: int,
        horizon: int = 1,
        ratios: tuple[float, float, float] = (0.6, 0.2, 0.2),
    ) -> None:
        self.x, self.y = make_windows(features, target, window, horizon)
        self.window = window
        self.horizon = horizon
        self.split = chronological_split(len(self.x), ratios)

    def __len__(self) -> int:
        return len(self.x)

    def _part(self, s: slice) -> tuple[np.ndarray, np.ndarray]:
        return self.x[s], self.y[s]

    @property
    def train(self) -> tuple[np.ndarray, np.ndarray]:
        return self._part(self.split.train)

    @property
    def val(self) -> tuple[np.ndarray, np.ndarray]:
        return self._part(self.split.val)

    @property
    def test(self) -> tuple[np.ndarray, np.ndarray]:
        return self._part(self.split.test)

    def batches(
        self,
        part: str = "train",
        batch_size: int = 32,
        shuffle: bool = True,
        rng: np.random.Generator | None = None,
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield mini-batches from one split.

        Shuffling permutes *windows* (not time steps), which is safe for
        i.i.d. mini-batch SGD because each window is a self-contained
        supervised sample.
        """
        x, y = self._part(getattr(self.split, part))
        idx = np.arange(len(x))
        if shuffle:
            (rng or np.random.default_rng()).shuffle(idx)
        for start in range(0, len(idx), batch_size):
            sel = idx[start : start + batch_size]
            yield x[sel], y[sel]
