"""Algorithm 1, end to end.

``PredictionPipeline`` composes the stages in the paper's order:

1. **DataClean** — keep complete records (:mod:`repro.data.cleaning`);
2. **Normalize** — max-min scaling, eq. 1 (:mod:`repro.data.scaling`);
3. **PCC screening** — keep the top half of indicators by correlation
   with the target, eq. 2 (:mod:`repro.data.correlation`);
4. **DataExpansion** — horizontal lag expansion, Fig. 4b
   (:mod:`repro.data.expansion`);
5. **Windowing + 6:2:2 chronological split**
   (:mod:`repro.data.windowing`);
6. hand the windows to any registered forecaster.

To avoid information leaking from the evaluation segments, the scaler and
the correlation ranking are fitted **on the training fraction of the
series only** (the paper is silent on this; fitting on everything would
flatter all models equally, so the stricter choice is used and noted in
EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..models.base import Forecaster, create_forecaster
from ..traces.schema import EntityTrace, indicator_names
from ..training.metrics import mae, mse, rmse
from .cleaning import CleaningReport, clean_matrix
from .correlation import select_top_half
from .expansion import difference_expand, horizontal_expand, weighted_horizontal_expand
from .scaling import MinMaxScaler
from .windowing import WindowDataset

__all__ = ["PipelineConfig", "PipelineResult", "PredictionPipeline"]

SCENARIOS = ("uni", "mul", "mul_exp")


@dataclass(frozen=True)
class PipelineConfig:
    """Knobs of the Algorithm-1 pipeline.

    ``scenario`` selects the paper's three input regimes:
    ``"uni"`` (target history only), ``"mul"`` (top-half PCC screen),
    ``"mul_exp"`` (screen + horizontal lag expansion, the paper's choice).
    """

    target: str = "cpu_util_percent"
    scenario: str = "mul_exp"
    window: int = 12
    horizon: int = 1
    ratios: tuple[float, float, float] = (0.6, 0.2, 0.2)
    lags: tuple[int, ...] = (2, 1, 0)
    cleaning_policy: str = "drop"
    winsorize_z: float | None = None
    #: §V-C extensions; both default off to match the paper's main setup
    add_differences: bool = False
    correlation_weighted: bool = False
    max_weighted_lags: int = 4

    def __post_init__(self) -> None:
        if self.scenario not in SCENARIOS:
            raise ValueError(f"scenario must be one of {SCENARIOS}, got {self.scenario!r}")
        if self.target not in indicator_names():
            raise ValueError(f"unknown target {self.target!r}")
        if self.window < 2:
            raise ValueError(f"window must be >= 2, got {self.window}")


@dataclass
class PipelineResult:
    """Everything the downstream harnesses need from one pipeline run."""

    dataset: WindowDataset
    scaler: MinMaxScaler
    feature_names: list[str]
    selected_indicators: list[str]
    ranking: list[tuple[str, float]]
    target_col: int
    cleaning_report: CleaningReport
    config: PipelineConfig
    entity_id: str

    def denormalize_target(self, values: np.ndarray) -> np.ndarray:
        """Map normalized predictions back to indicator units."""
        names = indicator_names()
        col = names.index(self.config.target)
        return self.scaler.inverse_transform_column(values, col)


@dataclass
class EvaluationResult:
    """Fit-and-evaluate outcome for one forecaster on one pipeline."""

    forecaster: Forecaster
    pipeline: PipelineResult
    predictions: np.ndarray
    truths: np.ndarray
    metrics: dict[str, float] = field(default_factory=dict)


class PredictionPipeline:
    """Run Algorithm 1 on one entity's monitoring log."""

    def __init__(self, config: PipelineConfig | None = None) -> None:
        self.config = config or PipelineConfig()

    # -- stage composition -------------------------------------------------------

    def prepare(self, entity: EntityTrace) -> PipelineResult:
        """Stages 1-5: from raw log to a windowed, split dataset."""
        cfg = self.config
        names = indicator_names()

        # 1. DataClean
        _, values, report = clean_matrix(
            entity.timestamps,
            entity.values,
            policy=cfg.cleaning_policy,
            winsorize_z=cfg.winsorize_z,
        )
        if len(values) < cfg.window * 4:
            raise ValueError(
                f"only {len(values)} complete records left after cleaning; "
                f"too short for window={cfg.window}"
            )

        n_train_rows = int(len(values) * cfg.ratios[0])

        # 2. Normalize (scaler fitted on the training fraction)
        scaler = MinMaxScaler().fit(values[:n_train_rows])
        normalized = scaler.transform(values)

        # 3. PCC screening (ranking computed on the training fraction)
        if cfg.scenario == "uni":
            selected = [cfg.target]
            _, ranking = select_top_half(values[:n_train_rows], names, cfg.target)
        else:
            selected, ranking = select_top_half(values[:n_train_rows], names, cfg.target)
        sel_idx = [names.index(s) for s in selected]
        features = normalized[:, sel_idx]
        feature_names = list(selected)

        # 4. DataExpansion (Mul-Exp only)
        if cfg.scenario == "mul_exp":
            if cfg.correlation_weighted:
                corr = np.array([dict(ranking)[s] for s in selected])
                features, feature_names = weighted_horizontal_expand(
                    features, corr, feature_names, max_lags=cfg.max_weighted_lags
                )
            else:
                features, feature_names = horizontal_expand(
                    features, feature_names, lags=cfg.lags
                )
        if cfg.add_differences:
            features, feature_names = difference_expand(features, feature_names)

        # the target series aligned with the (possibly row-trimmed) features
        target_series = normalized[len(normalized) - len(features) :, names.index(cfg.target)]

        # the feature column holding the target's current value
        if cfg.scenario == "mul_exp":
            target_col = feature_names.index(f"{cfg.target}_lag0")
        else:
            target_col = feature_names.index(cfg.target)

        # 5. windows + 6:2:2 chronological split
        dataset = WindowDataset(
            features, target_series, window=cfg.window, horizon=cfg.horizon, ratios=cfg.ratios
        )

        return PipelineResult(
            dataset=dataset,
            scaler=scaler,
            feature_names=feature_names,
            selected_indicators=selected,
            ranking=ranking,
            target_col=target_col,
            cleaning_report=report,
            config=cfg,
            entity_id=entity.entity_id,
        )

    # -- model execution -----------------------------------------------------------

    def run(
        self,
        entity: EntityTrace,
        forecaster: str | Forecaster,
        forecaster_kwargs: dict[str, Any] | None = None,
        prepared: PipelineResult | None = None,
    ) -> EvaluationResult:
        """Stages 1-6: prepare, fit the forecaster, evaluate on the test split.

        Metrics are reported in normalized units, matching the paper's
        Table II (whose MSE/MAE magnitudes, x 10^-2, only make sense on
        the [0, 1] normalized scale).
        """
        prepared = prepared if prepared is not None else self.prepare(entity)
        kwargs = dict(forecaster_kwargs or {})
        if isinstance(forecaster, str):
            kwargs.setdefault("horizon", self.config.horizon)
            kwargs.setdefault("target_col", prepared.target_col)
            forecaster = create_forecaster(forecaster, **kwargs)

        xt, yt = prepared.dataset.train
        xv, yv = prepared.dataset.val
        xe, ye = prepared.dataset.test
        forecaster.fit(xt, yt, xv, yv)
        pred = forecaster.predict(xe)

        return EvaluationResult(
            forecaster=forecaster,
            pipeline=prepared,
            predictions=pred,
            truths=ye,
            metrics={
                "mse": mse(ye, pred),
                "mae": mae(ye, pred),
                "rmse": rmse(ye, pred),
            },
        )
